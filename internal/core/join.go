package core

import (
	"fmt"

	"repro/internal/lambda"
	"repro/internal/tcap"
)

// compileJoin lowers an n-ary JoinComp. The compiler — not the user —
// decides the join strategy (paper §4): it splits the predicate into
// conjuncts, extracts equi-join conjuncts whose two sides each touch a
// single distinct input, orders the joins left-deep along key connectivity,
// emits HASH + JOIN statements per step, re-verifies the full predicate
// after probing (hash collisions are not matches), and finally applies the
// projection. Inputs with no connecting key fall back to a constant-key
// (cross) join, still filtered by the full predicate.
func (c *compiler) compileJoin(j *Join) (listState, error) {
	if j.Kind == JoinSemi || j.Kind == JoinAnti {
		return c.compileSemiAnti(j)
	}
	if j.Kind != JoinInner {
		return listState{}, fmt.Errorf("core: outer join kinds are served by the cluster callback API (HashPartitionJoinKind), not the lambda compiler")
	}
	n := len(j.In)
	if n < 2 {
		return listState{}, fmt.Errorf("core: join needs at least two inputs, got %d", n)
	}
	if len(j.ArgTypes) != n {
		return listState{}, fmt.Errorf("core: join has %d inputs but %d arg types", n, len(j.ArgTypes))
	}
	if j.Predicate == nil || j.Projection == nil {
		return listState{}, fmt.Errorf("core: join requires Predicate and Projection")
	}
	comp := c.compName("Join")

	ins := make([]listState, n)
	args := make([]*lambda.Arg, n)
	seen := map[string]bool{}
	for i, in := range j.In {
		st := c.outs[in]
		if seen[st.objCol] {
			return listState{}, fmt.Errorf("core: join input %d reuses the same computation instance; wrap one side in its own Scan/Selection", i)
		}
		seen[st.objCol] = true
		ins[i] = listState{name: st.name, cols: []string{st.objCol}, objCol: st.objCol}
		args[i] = lambda.NewArg(i, j.ArgTypes[i])
	}

	pred := j.Predicate(args)
	conjuncts := lambda.SplitConjuncts(pred)
	type equi struct {
		l, r   lambda.Term
		li, ri int
	}
	var equis []equi
	for _, cj := range conjuncts {
		if l, r, li, ri, ok := lambda.IsEquiJoinConjunct(cj); ok {
			equis = append(equis, equi{l, r, li, ri})
		}
	}

	joined := map[int]bool{0: true}
	acc := ins[0]
	accBinding := map[int]string{0: ins[0].objCol}
	accObjCols := []string{ins[0].objCol}

	for len(joined) < n {
		var keyAcc, keyBuild lambda.Term
		buildArg := -1
		for _, e := range equis {
			if joined[e.li] && !joined[e.ri] {
				keyAcc, keyBuild, buildArg = e.l, e.r, e.ri
				break
			}
			if joined[e.ri] && !joined[e.li] {
				keyAcc, keyBuild, buildArg = e.r, e.l, e.li
				break
			}
		}
		if buildArg == -1 {
			// No key connects the joined set to any remaining input:
			// constant-key cross join with the lowest-index leftover.
			for idx := 0; idx < n; idx++ {
				if !joined[idx] {
					buildArg = idx
					break
				}
			}
			keyAcc, keyBuild = lambda.ConstI64(0), lambda.ConstI64(0)
		}

		// Build side: key extraction + HASH on the input's own pipeline.
		bs := ins[buildArg]
		bsState, bsKeyCol, err := c.compileTerm(bs, keyBuild, map[int]string{buildArg: bs.objCol}, comp)
		if err != nil {
			return listState{}, err
		}
		bsState, bsHashCol := c.emitHash(bsState, bsKeyCol, []string{bs.objCol}, comp)

		// Probe side: key extraction + HASH on the accumulated pipeline.
		accState, accKeyCol, err := c.compileTerm(acc, keyAcc, accBinding, comp)
		if err != nil {
			return listState{}, err
		}
		accState, accHashCol := c.emitHash(accState, accKeyCol, accObjCols, comp)

		outCols := append(append([]string{}, accObjCols...), bs.objCol)
		out := listState{name: c.freshList(), cols: outCols}
		c.res.Prog.Stmts = append(c.res.Prog.Stmts, &tcap.Stmt{
			Out:      tcap.ColumnsRef{Name: out.name, Cols: outCols},
			Op:       tcap.OpJoin,
			Applied:  tcap.ColumnsRef{Name: accState.name, Cols: []string{accHashCol}},
			Copied:   tcap.ColumnsRef{Name: accState.name, Cols: accObjCols},
			Applied2: tcap.ColumnsRef{Name: bsState.name, Cols: []string{bsHashCol}},
			Copied2:  tcap.ColumnsRef{Name: bsState.name, Cols: []string{bs.objCol}},
			Comp:     comp,
			Info:     map[string]string{"type": "join"},
		})
		joined[buildArg] = true
		accBinding[buildArg] = bs.objCol
		accObjCols = outCols
		acc = out
	}

	// Re-verify the complete predicate post-join.
	st, boolCol, err := c.compileTerm(acc, pred, accBinding, comp)
	if err != nil {
		return listState{}, err
	}
	acc = c.emitFilter(st, boolCol, accObjCols, comp)

	// Projection to the output object.
	st, projCol, err := c.compileTerm(acc, j.Projection(args), accBinding, comp)
	if err != nil {
		return listState{}, err
	}
	st.objCol = projCol
	return st, nil
}

// compileSemiAnti lowers a semi or anti join. Unlike the inner path, the
// JOIN statement's Applied/Applied2 name raw key VALUE columns, not hash
// columns: the build side collects an exact key-value set (JoinTable in
// key-set mode) and the probe emits each left object whose key is (semi) or
// is not (anti) in the set. Exact membership means no hash-collision hazard,
// so there is no post-join re-verification filter — which an anti join could
// not express anyway (a collision-dropped row is silently wrong, not
// filterable). The output is the probe-side object column unchanged.
func (c *compiler) compileSemiAnti(j *Join) (listState, error) {
	kind := "semi"
	if j.Kind == JoinAnti {
		kind = "anti"
	}
	if len(j.In) != 2 {
		return listState{}, fmt.Errorf("core: %s join needs exactly two inputs, got %d", kind, len(j.In))
	}
	if len(j.ArgTypes) != 2 {
		return listState{}, fmt.Errorf("core: %s join has 2 inputs but %d arg types", kind, len(j.ArgTypes))
	}
	if j.Predicate == nil {
		return listState{}, fmt.Errorf("core: %s join requires a Predicate", kind)
	}
	if j.Projection != nil {
		return listState{}, fmt.Errorf("core: %s join outputs the left-side object; Projection must be nil", kind)
	}
	comp := c.compName("Join")

	probe := c.outs[j.In[0]]
	build := c.outs[j.In[1]]
	if probe.objCol == build.objCol {
		return listState{}, fmt.Errorf("core: %s join inputs reuse the same computation instance; wrap one side in its own Scan/Selection", kind)
	}
	args := []*lambda.Arg{lambda.NewArg(0, j.ArgTypes[0]), lambda.NewArg(1, j.ArgTypes[1])}

	// The predicate must be a single equi-join conjunct: exact key-set
	// membership cannot re-verify residual conjuncts after the fact (the
	// build objects are gone by emit time).
	pred := j.Predicate(args)
	conjuncts := lambda.SplitConjuncts(pred)
	if len(conjuncts) != 1 {
		return listState{}, fmt.Errorf("core: %s join predicate must be a single equi-join conjunct, got %d conjuncts", kind, len(conjuncts))
	}
	l, r, li, _, ok := lambda.IsEquiJoinConjunct(conjuncts[0])
	if !ok {
		return listState{}, fmt.Errorf("core: %s join predicate must be an equi-join conjunct (probe key == build key)", kind)
	}
	keyProbe, keyBuild := l, r
	if li == 1 {
		keyProbe, keyBuild = r, l
	}

	// Build side: key extraction only — the sink reads raw key values into
	// the key-value set, no HASH column.
	bsState, bsKeyCol, err := c.compileTerm(
		listState{name: build.name, cols: []string{build.objCol}, objCol: build.objCol},
		keyBuild, map[int]string{1: build.objCol}, comp)
	if err != nil {
		return listState{}, err
	}

	// Probe side: key extraction only.
	pState, pKeyCol, err := c.compileTerm(
		listState{name: probe.name, cols: []string{probe.objCol}, objCol: probe.objCol},
		keyProbe, map[int]string{0: probe.objCol}, comp)
	if err != nil {
		return listState{}, err
	}

	out := listState{name: c.freshList(), cols: []string{probe.objCol}, objCol: probe.objCol}
	c.res.Prog.Stmts = append(c.res.Prog.Stmts, &tcap.Stmt{
		Out:      tcap.ColumnsRef{Name: out.name, Cols: out.cols},
		Op:       tcap.OpJoin,
		Applied:  tcap.ColumnsRef{Name: pState.name, Cols: []string{pKeyCol}},
		Copied:   tcap.ColumnsRef{Name: pState.name, Cols: []string{probe.objCol}},
		Applied2: tcap.ColumnsRef{Name: bsState.name, Cols: []string{bsKeyCol}},
		Copied2:  tcap.ColumnsRef{Name: bsState.name, Cols: []string{build.objCol}},
		Comp:     comp,
		Info:     map[string]string{"type": "join", "joinType": kind},
	})
	return out, nil
}
