package core

import (
	"fmt"

	"repro/internal/lambda"
	"repro/internal/tcap"
)

// compileJoin lowers an n-ary JoinComp. The compiler — not the user —
// decides the join strategy (paper §4): it splits the predicate into
// conjuncts, extracts equi-join conjuncts whose two sides each touch a
// single distinct input, orders the joins left-deep along key connectivity,
// emits HASH + JOIN statements per step, re-verifies the full predicate
// after probing (hash collisions are not matches), and finally applies the
// projection. Inputs with no connecting key fall back to a constant-key
// (cross) join, still filtered by the full predicate.
func (c *compiler) compileJoin(j *Join) (listState, error) {
	n := len(j.In)
	if n < 2 {
		return listState{}, fmt.Errorf("core: join needs at least two inputs, got %d", n)
	}
	if len(j.ArgTypes) != n {
		return listState{}, fmt.Errorf("core: join has %d inputs but %d arg types", n, len(j.ArgTypes))
	}
	if j.Predicate == nil || j.Projection == nil {
		return listState{}, fmt.Errorf("core: join requires Predicate and Projection")
	}
	comp := c.compName("Join")

	ins := make([]listState, n)
	args := make([]*lambda.Arg, n)
	seen := map[string]bool{}
	for i, in := range j.In {
		st := c.outs[in]
		if seen[st.objCol] {
			return listState{}, fmt.Errorf("core: join input %d reuses the same computation instance; wrap one side in its own Scan/Selection", i)
		}
		seen[st.objCol] = true
		ins[i] = listState{name: st.name, cols: []string{st.objCol}, objCol: st.objCol}
		args[i] = lambda.NewArg(i, j.ArgTypes[i])
	}

	pred := j.Predicate(args)
	conjuncts := lambda.SplitConjuncts(pred)
	type equi struct {
		l, r   lambda.Term
		li, ri int
	}
	var equis []equi
	for _, cj := range conjuncts {
		if l, r, li, ri, ok := lambda.IsEquiJoinConjunct(cj); ok {
			equis = append(equis, equi{l, r, li, ri})
		}
	}

	joined := map[int]bool{0: true}
	acc := ins[0]
	accBinding := map[int]string{0: ins[0].objCol}
	accObjCols := []string{ins[0].objCol}

	for len(joined) < n {
		var keyAcc, keyBuild lambda.Term
		buildArg := -1
		for _, e := range equis {
			if joined[e.li] && !joined[e.ri] {
				keyAcc, keyBuild, buildArg = e.l, e.r, e.ri
				break
			}
			if joined[e.ri] && !joined[e.li] {
				keyAcc, keyBuild, buildArg = e.r, e.l, e.li
				break
			}
		}
		if buildArg == -1 {
			// No key connects the joined set to any remaining input:
			// constant-key cross join with the lowest-index leftover.
			for idx := 0; idx < n; idx++ {
				if !joined[idx] {
					buildArg = idx
					break
				}
			}
			keyAcc, keyBuild = lambda.ConstI64(0), lambda.ConstI64(0)
		}

		// Build side: key extraction + HASH on the input's own pipeline.
		bs := ins[buildArg]
		bsState, bsKeyCol, err := c.compileTerm(bs, keyBuild, map[int]string{buildArg: bs.objCol}, comp)
		if err != nil {
			return listState{}, err
		}
		bsState, bsHashCol := c.emitHash(bsState, bsKeyCol, []string{bs.objCol}, comp)

		// Probe side: key extraction + HASH on the accumulated pipeline.
		accState, accKeyCol, err := c.compileTerm(acc, keyAcc, accBinding, comp)
		if err != nil {
			return listState{}, err
		}
		accState, accHashCol := c.emitHash(accState, accKeyCol, accObjCols, comp)

		outCols := append(append([]string{}, accObjCols...), bs.objCol)
		out := listState{name: c.freshList(), cols: outCols}
		c.res.Prog.Stmts = append(c.res.Prog.Stmts, &tcap.Stmt{
			Out:      tcap.ColumnsRef{Name: out.name, Cols: outCols},
			Op:       tcap.OpJoin,
			Applied:  tcap.ColumnsRef{Name: accState.name, Cols: []string{accHashCol}},
			Copied:   tcap.ColumnsRef{Name: accState.name, Cols: accObjCols},
			Applied2: tcap.ColumnsRef{Name: bsState.name, Cols: []string{bsHashCol}},
			Copied2:  tcap.ColumnsRef{Name: bsState.name, Cols: []string{bs.objCol}},
			Comp:     comp,
			Info:     map[string]string{"type": "join"},
		})
		joined[buildArg] = true
		accBinding[buildArg] = bs.objCol
		accObjCols = outCols
		acc = out
	}

	// Re-verify the complete predicate post-join.
	st, boolCol, err := c.compileTerm(acc, pred, accBinding, comp)
	if err != nil {
		return listState{}, err
	}
	acc = c.emitFilter(st, boolCol, accObjCols, comp)

	// Projection to the output object.
	st, projCol, err := c.compileTerm(acc, j.Projection(args), accBinding, comp)
	if err != nil {
		return listState{}, err
	}
	st.objCol = projCol
	return st, nil
}
