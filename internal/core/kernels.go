package core

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/lambda"
	"repro/internal/object"
)

// Kernel constructors: each lambda term node lowers to one TCAP APPLY whose
// executable is a closure built here. The closures are monomorphic over
// column types where it matters — the Go analogue of the C++ binding's
// template-instantiated pipeline stages (paper §5.3).

// resolveField looks a member up through the handle's type code (the vTable
// fetch of the member kernel's one-entry cache).
func resolveField(ctx *engine.Ctx, tc uint32, field string) (*object.Field, error) {
	ti := ctx.Reg.Lookup(tc)
	if ti == nil {
		return nil, fmt.Errorf("core: unregistered type code %d", tc)
	}
	f := ti.Field(field)
	if f == nil {
		return nil, fmt.Errorf("core: type %s has no member %q", ti.Name, field)
	}
	return f, nil
}

// memberKernel reads a member variable from each object of a handle column.
// Dispatch is through the type code in each handle with a one-entry cache,
// mirroring vTable lookup amortized over a vector. The output path is
// monomorphic on the cached field's kind: scalar members fill a typed
// column directly (I64Col/F64Col/StrCol/...) with no per-row Value boxing;
// only columns that mix member kinds across type codes fall back to the
// boxed path.
func memberKernel(field string) engine.ApplyKernel {
	return func(ctx *engine.Ctx, in []engine.Column) (engine.Column, error) {
		rc, ok := in[0].(engine.RefCol)
		if !ok {
			return nil, fmt.Errorf("core: member access %q over non-handle column", field)
		}
		if len(rc) == 0 {
			return engine.ValCol(nil), nil
		}
		if rc[0].IsNil() {
			return nil, fmt.Errorf("core: member access %q on nil handle", field)
		}
		code := rc[0].TypeCode()
		f, err := resolveField(ctx, code, field)
		if err != nil {
			return nil, err
		}
		// next advances the cache for row i, reporting whether the
		// monomorphic loop can continue (same member kind).
		next := func(i int) (bool, error) {
			r := rc[i]
			if r.IsNil() {
				return false, fmt.Errorf("core: member access %q on nil handle", field)
			}
			if tc := r.TypeCode(); tc != code {
				nf, err := resolveField(ctx, tc, field)
				if err != nil {
					return false, err
				}
				same := nf.Kind == f.Kind
				code, f = tc, nf
				return same, nil
			}
			return true, nil
		}
		switch f.Kind {
		case object.KInt64:
			out := make(engine.I64Col, len(rc))
			for i := range rc {
				ok, err := next(i)
				if err != nil {
					return nil, err
				}
				if !ok {
					return memberBoxed(ctx, rc, field)
				}
				out[i] = object.GetI64(rc[i], f)
			}
			return out, nil
		case object.KInt32:
			out := make(engine.I64Col, len(rc))
			for i := range rc {
				ok, err := next(i)
				if err != nil {
					return nil, err
				}
				if !ok {
					return memberBoxed(ctx, rc, field)
				}
				out[i] = int64(object.GetI32(rc[i], f))
			}
			return out, nil
		case object.KFloat64:
			out := make(engine.F64Col, len(rc))
			for i := range rc {
				ok, err := next(i)
				if err != nil {
					return nil, err
				}
				if !ok {
					return memberBoxed(ctx, rc, field)
				}
				out[i] = object.GetF64(rc[i], f)
			}
			return out, nil
		case object.KBool:
			out := make(engine.BoolCol, len(rc))
			for i := range rc {
				ok, err := next(i)
				if err != nil {
					return nil, err
				}
				if !ok {
					return memberBoxed(ctx, rc, field)
				}
				out[i] = object.GetBool(rc[i], f)
			}
			return out, nil
		case object.KString:
			out := make(engine.StrCol, len(rc))
			for i := range rc {
				ok, err := next(i)
				if err != nil {
					return nil, err
				}
				if !ok {
					return memberBoxed(ctx, rc, field)
				}
				out[i] = object.GetStrField(rc[i], f)
			}
			return out, nil
		case object.KHandle:
			out := make(engine.RefCol, len(rc))
			for i := range rc {
				ok, err := next(i)
				if err != nil {
					return nil, err
				}
				if !ok {
					return memberBoxed(ctx, rc, field)
				}
				out[i] = object.GetHandleField(rc[i], f)
			}
			return out, nil
		default:
			return memberBoxed(ctx, rc, field)
		}
	}
}

// memberBoxed is the generic fallback for member columns whose kind changes
// mid-vector (heterogeneous type codes with differently-typed members).
func memberBoxed(ctx *engine.Ctx, rc engine.RefCol, field string) (engine.Column, error) {
	var cachedCode uint32
	var cachedField *object.Field
	out := make([]object.Value, len(rc))
	for i, r := range rc {
		if r.IsNil() {
			return nil, fmt.Errorf("core: member access %q on nil handle", field)
		}
		tc := r.TypeCode()
		if tc != cachedCode || cachedField == nil {
			f, err := resolveField(ctx, tc, field)
			if err != nil {
				return nil, err
			}
			cachedCode, cachedField = tc, f
		}
		out[i] = object.GetField(r, cachedField)
	}
	return engine.ColumnOf(out), nil
}

// methodKernel invokes a registered virtual method on each object of a
// handle column (dynamic dispatch through the handle's type code). Like the
// member kernel, the output path is monomorphic on the method's declared
// return kind: results are written straight into a typed column, and only
// methods whose returned kind disagrees with the declaration (or changes
// across type codes) fall back to boxing.
func methodKernel(method string) engine.ApplyKernel {
	return func(ctx *engine.Ctx, in []engine.Column) (engine.Column, error) {
		rc, ok := in[0].(engine.RefCol)
		if !ok {
			return nil, fmt.Errorf("core: method call %q over non-handle column", method)
		}
		if len(rc) == 0 {
			return engine.ValCol(nil), nil
		}
		var cachedCode uint32
		var cached object.Method
		resolve := func(r object.Ref) error {
			if r.IsNil() {
				return fmt.Errorf("core: method call %q on nil handle", method)
			}
			tc := r.TypeCode()
			if tc == cachedCode && cached.Fn != nil {
				return nil
			}
			ti := ctx.Reg.Lookup(tc)
			if ti == nil {
				return fmt.Errorf("core: unregistered type code %d", tc)
			}
			m, ok := ti.Method(method)
			if !ok {
				return fmt.Errorf("core: type %s has no method %q", ti.Name, method)
			}
			cachedCode, cached = tc, m
			return nil
		}
		if err := resolve(rc[0]); err != nil {
			return nil, err
		}
		// boxedFrom finishes a column whose rows [0, from) are already in
		// vals: methods are user code and may be expensive or
		// non-idempotent, so the typed prefix is re-boxed, never
		// re-invoked.
		boxedFrom := func(vals []object.Value, from int) (engine.Column, error) {
			for i := from; i < len(rc); i++ {
				if err := resolve(rc[i]); err != nil {
					return nil, err
				}
				vals[i] = cached.Fn(rc[i])
			}
			return engine.ColumnOf(vals), nil
		}
		switch cached.Ret {
		case object.KInt32, object.KInt64:
			out := make(engine.I64Col, len(rc))
			for i, r := range rc {
				if err := resolve(r); err != nil {
					return nil, err
				}
				v := cached.Fn(r)
				if v.K != object.KInt32 && v.K != object.KInt64 {
					vals := make([]object.Value, len(rc))
					for j := 0; j < i; j++ {
						vals[j] = object.Int64Value(out[j])
					}
					vals[i] = v
					return boxedFrom(vals, i+1)
				}
				out[i] = v.I
			}
			return out, nil
		case object.KFloat64:
			out := make(engine.F64Col, len(rc))
			for i, r := range rc {
				if err := resolve(r); err != nil {
					return nil, err
				}
				v := cached.Fn(r)
				if v.K != object.KFloat64 {
					vals := make([]object.Value, len(rc))
					for j := 0; j < i; j++ {
						vals[j] = object.Float64Value(out[j])
					}
					vals[i] = v
					return boxedFrom(vals, i+1)
				}
				out[i] = v.F
			}
			return out, nil
		case object.KBool:
			out := make(engine.BoolCol, len(rc))
			for i, r := range rc {
				if err := resolve(r); err != nil {
					return nil, err
				}
				v := cached.Fn(r)
				if v.K != object.KBool {
					vals := make([]object.Value, len(rc))
					for j := 0; j < i; j++ {
						vals[j] = object.BoolValue(out[j])
					}
					vals[i] = v
					return boxedFrom(vals, i+1)
				}
				out[i] = v.B
			}
			return out, nil
		case object.KString:
			out := make(engine.StrCol, len(rc))
			for i, r := range rc {
				if err := resolve(r); err != nil {
					return nil, err
				}
				v := cached.Fn(r)
				if v.K != object.KString {
					vals := make([]object.Value, len(rc))
					for j := 0; j < i; j++ {
						vals[j] = object.StringValue(out[j])
					}
					vals[i] = v
					return boxedFrom(vals, i+1)
				}
				out[i] = v.S
			}
			return out, nil
		case object.KHandle:
			out := make(engine.RefCol, len(rc))
			for i, r := range rc {
				if err := resolve(r); err != nil {
					return nil, err
				}
				v := cached.Fn(r)
				if v.K != object.KHandle {
					vals := make([]object.Value, len(rc))
					for j := 0; j < i; j++ {
						vals[j] = object.HandleValue(out[j])
					}
					vals[i] = v
					return boxedFrom(vals, i+1)
				}
				out[i] = v.H
			}
			return out, nil
		default:
			return boxedFrom(make([]object.Value, len(rc)), 0)
		}
	}
}

// constKernel produces a constant column sized to the batch (the first
// input column supplies the length).
func constKernel(v object.Value) engine.ApplyKernel {
	return func(ctx *engine.Ctx, in []engine.Column) (engine.Column, error) {
		n := in[0].Len()
		switch v.K {
		case object.KFloat64:
			out := make(engine.F64Col, n)
			for i := range out {
				out[i] = v.F
			}
			return out, nil
		case object.KInt32, object.KInt64:
			out := make(engine.I64Col, n)
			for i := range out {
				out[i] = v.I
			}
			return out, nil
		case object.KBool:
			out := make(engine.BoolCol, n)
			for i := range out {
				out[i] = v.B
			}
			return out, nil
		case object.KString:
			out := make(engine.StrCol, n)
			for i := range out {
				out[i] = v.S
			}
			return out, nil
		default:
			out := make(engine.ValCol, n)
			for i := range out {
				out[i] = v
			}
			return out, nil
		}
	}
}

// nativeKernel applies an opaque native lambda row-wise. The native context
// exposes the live output allocator so makeObject-style calls allocate in
// place on the output page.
func nativeKernel(fn lambda.NativeFn, nargs int) engine.ApplyKernel {
	return func(ctx *engine.Ctx, in []engine.Column) (engine.Column, error) {
		if len(in) != nargs {
			return nil, fmt.Errorf("core: native lambda expects %d inputs, got %d", nargs, len(in))
		}
		n := in[0].Len()
		nctx := &lambda.NativeCtx{Alloc: ctx.Alloc(), Reg: ctx.Reg}
		args := make([]object.Value, len(in))
		out := make([]object.Value, n)
		for i := 0; i < n; i++ {
			for j, c := range in {
				args[j] = c.Value(i)
			}
			v, err := fn(nctx, args)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return engine.ColumnOf(out), nil
	}
}

// binaryKernel composes two columns with a higher-order operator. Monomorphic
// fast paths cover the common float64/int64/string/bool pairings; a boxed
// fallback handles mixed kinds.
func binaryKernel(op lambda.Op) engine.ApplyKernel {
	return func(ctx *engine.Ctx, in []engine.Column) (engine.Column, error) {
		if len(in) != 2 {
			return nil, fmt.Errorf("core: binary %s expects 2 inputs", op)
		}
		l, r := in[0], in[1]
		if l.Len() != r.Len() {
			return nil, fmt.Errorf("core: binary %s over mismatched lengths %d/%d", op, l.Len(), r.Len())
		}
		switch op {
		case lambda.OpAnd, lambda.OpOr:
			lb, lok := l.(engine.BoolCol)
			rb, rok := r.(engine.BoolCol)
			if !lok || !rok {
				return nil, fmt.Errorf("core: %s over non-boolean columns", op)
			}
			out := make(engine.BoolCol, len(lb))
			if op == lambda.OpAnd {
				for i := range lb {
					out[i] = lb[i] && rb[i]
				}
			} else {
				for i := range lb {
					out[i] = lb[i] || rb[i]
				}
			}
			return out, nil
		}

		if lf, ok := l.(engine.F64Col); ok {
			if rf, ok := r.(engine.F64Col); ok {
				return f64Binary(op, lf, rf)
			}
		}
		if li, ok := l.(engine.I64Col); ok {
			if ri, ok := r.(engine.I64Col); ok {
				return i64Binary(op, li, ri)
			}
		}
		if ls, ok := l.(engine.StrCol); ok {
			if rs, ok := r.(engine.StrCol); ok {
				return strBinary(op, ls, rs)
			}
		}
		return boxedBinary(op, l, r)
	}
}

func f64Binary(op lambda.Op, l, r engine.F64Col) (engine.Column, error) {
	n := len(l)
	switch op {
	case lambda.OpEq, lambda.OpNe, lambda.OpGt, lambda.OpGe, lambda.OpLt, lambda.OpLe:
		out := make(engine.BoolCol, n)
		for i := 0; i < n; i++ {
			out[i] = cmpBool(op, l[i] == r[i], l[i] < r[i])
		}
		return out, nil
	case lambda.OpAdd:
		out := make(engine.F64Col, n)
		for i := range out {
			out[i] = l[i] + r[i]
		}
		return out, nil
	case lambda.OpSub:
		out := make(engine.F64Col, n)
		for i := range out {
			out[i] = l[i] - r[i]
		}
		return out, nil
	case lambda.OpMul:
		out := make(engine.F64Col, n)
		for i := range out {
			out[i] = l[i] * r[i]
		}
		return out, nil
	case lambda.OpDiv:
		out := make(engine.F64Col, n)
		for i := range out {
			out[i] = l[i] / r[i]
		}
		return out, nil
	}
	return nil, fmt.Errorf("core: unsupported float op %s", op)
}

func i64Binary(op lambda.Op, l, r engine.I64Col) (engine.Column, error) {
	n := len(l)
	switch op {
	case lambda.OpEq, lambda.OpNe, lambda.OpGt, lambda.OpGe, lambda.OpLt, lambda.OpLe:
		out := make(engine.BoolCol, n)
		for i := 0; i < n; i++ {
			out[i] = cmpBool(op, l[i] == r[i], l[i] < r[i])
		}
		return out, nil
	case lambda.OpAdd:
		out := make(engine.I64Col, n)
		for i := range out {
			out[i] = l[i] + r[i]
		}
		return out, nil
	case lambda.OpSub:
		out := make(engine.I64Col, n)
		for i := range out {
			out[i] = l[i] - r[i]
		}
		return out, nil
	case lambda.OpMul:
		out := make(engine.I64Col, n)
		for i := range out {
			out[i] = l[i] * r[i]
		}
		return out, nil
	case lambda.OpDiv:
		out := make(engine.I64Col, n)
		for i := range out {
			if r[i] == 0 {
				return nil, fmt.Errorf("core: integer division by zero")
			}
			out[i] = l[i] / r[i]
		}
		return out, nil
	}
	return nil, fmt.Errorf("core: unsupported int op %s", op)
}

func strBinary(op lambda.Op, l, r engine.StrCol) (engine.Column, error) {
	n := len(l)
	switch op {
	case lambda.OpEq, lambda.OpNe, lambda.OpGt, lambda.OpGe, lambda.OpLt, lambda.OpLe:
		out := make(engine.BoolCol, n)
		for i := 0; i < n; i++ {
			out[i] = cmpBool(op, l[i] == r[i], l[i] < r[i])
		}
		return out, nil
	case lambda.OpAdd:
		out := make(engine.StrCol, n)
		for i := range out {
			out[i] = l[i] + r[i]
		}
		return out, nil
	}
	return nil, fmt.Errorf("core: unsupported string op %s", op)
}

func boxedBinary(op lambda.Op, l, r engine.Column) (engine.Column, error) {
	n := l.Len()
	switch op {
	case lambda.OpEq, lambda.OpNe, lambda.OpGt, lambda.OpGe, lambda.OpLt, lambda.OpLe:
		out := make(engine.BoolCol, n)
		for i := 0; i < n; i++ {
			lv, rv := l.Value(i), r.Value(i)
			out[i] = cmpBool(op, lv.Equal(rv), lv.Less(rv))
		}
		return out, nil
	case lambda.OpAdd, lambda.OpSub, lambda.OpMul, lambda.OpDiv:
		out := make(engine.F64Col, n)
		for i := 0; i < n; i++ {
			a, b := l.Value(i).AsFloat64(), r.Value(i).AsFloat64()
			switch op {
			case lambda.OpAdd:
				out[i] = a + b
			case lambda.OpSub:
				out[i] = a - b
			case lambda.OpMul:
				out[i] = a * b
			default:
				out[i] = a / b
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("core: unsupported boxed op %s", op)
}

func cmpBool(op lambda.Op, eq, lt bool) bool {
	switch op {
	case lambda.OpEq:
		return eq
	case lambda.OpNe:
		return !eq
	case lambda.OpLt:
		return lt
	case lambda.OpLe:
		return lt || eq
	case lambda.OpGt:
		return !lt && !eq
	case lambda.OpGe:
		return !lt
	}
	return false
}

// notKernel negates a boolean column.
func notKernel() engine.ApplyKernel {
	return func(ctx *engine.Ctx, in []engine.Column) (engine.Column, error) {
		bc, ok := in[0].(engine.BoolCol)
		if !ok {
			return nil, fmt.Errorf("core: ! over non-boolean column")
		}
		out := make(engine.BoolCol, len(bc))
		for i, b := range bc {
			out[i] = !b
		}
		return out, nil
	}
}
