package core

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/lambda"
	"repro/internal/object"
)

// Kernel constructors: each lambda term node lowers to one TCAP APPLY whose
// executable is a closure built here. The closures are monomorphic over
// column types where it matters — the Go analogue of the C++ binding's
// template-instantiated pipeline stages (paper §5.3).

// memberKernel reads a member variable from each object of a handle column.
// Dispatch is through the type code in each handle with a one-entry cache,
// mirroring vTable lookup amortized over a vector.
func memberKernel(field string) engine.ApplyKernel {
	return func(ctx *engine.Ctx, in []engine.Column) (engine.Column, error) {
		rc, ok := in[0].(engine.RefCol)
		if !ok {
			return nil, fmt.Errorf("core: member access %q over non-handle column", field)
		}
		var cachedCode uint32
		var cachedField *object.Field
		out := make([]object.Value, len(rc))
		for i, r := range rc {
			if r.IsNil() {
				return nil, fmt.Errorf("core: member access %q on nil handle", field)
			}
			tc := r.TypeCode()
			if tc != cachedCode || cachedField == nil {
				ti := ctx.Reg.Lookup(tc)
				if ti == nil {
					return nil, fmt.Errorf("core: unregistered type code %d", tc)
				}
				f := ti.Field(field)
				if f == nil {
					return nil, fmt.Errorf("core: type %s has no member %q", ti.Name, field)
				}
				cachedCode, cachedField = tc, f
			}
			out[i] = object.GetField(r, cachedField)
		}
		return engine.ColumnOf(out), nil
	}
}

// methodKernel invokes a registered virtual method on each object of a
// handle column (dynamic dispatch through the handle's type code).
func methodKernel(method string) engine.ApplyKernel {
	return func(ctx *engine.Ctx, in []engine.Column) (engine.Column, error) {
		rc, ok := in[0].(engine.RefCol)
		if !ok {
			return nil, fmt.Errorf("core: method call %q over non-handle column", method)
		}
		var cachedCode uint32
		var cachedFn func(object.Ref) object.Value
		out := make([]object.Value, len(rc))
		for i, r := range rc {
			if r.IsNil() {
				return nil, fmt.Errorf("core: method call %q on nil handle", method)
			}
			tc := r.TypeCode()
			if tc != cachedCode || cachedFn == nil {
				ti := ctx.Reg.Lookup(tc)
				if ti == nil {
					return nil, fmt.Errorf("core: unregistered type code %d", tc)
				}
				m, ok := ti.Method(method)
				if !ok {
					return nil, fmt.Errorf("core: type %s has no method %q", ti.Name, method)
				}
				cachedCode, cachedFn = tc, m.Fn
			}
			out[i] = cachedFn(r)
		}
		return engine.ColumnOf(out), nil
	}
}

// constKernel produces a constant column sized to the batch (the first
// input column supplies the length).
func constKernel(v object.Value) engine.ApplyKernel {
	return func(ctx *engine.Ctx, in []engine.Column) (engine.Column, error) {
		n := in[0].Len()
		switch v.K {
		case object.KFloat64:
			out := make(engine.F64Col, n)
			for i := range out {
				out[i] = v.F
			}
			return out, nil
		case object.KInt32, object.KInt64:
			out := make(engine.I64Col, n)
			for i := range out {
				out[i] = v.I
			}
			return out, nil
		case object.KBool:
			out := make(engine.BoolCol, n)
			for i := range out {
				out[i] = v.B
			}
			return out, nil
		case object.KString:
			out := make(engine.StrCol, n)
			for i := range out {
				out[i] = v.S
			}
			return out, nil
		default:
			out := make(engine.ValCol, n)
			for i := range out {
				out[i] = v
			}
			return out, nil
		}
	}
}

// nativeKernel applies an opaque native lambda row-wise. The native context
// exposes the live output allocator so makeObject-style calls allocate in
// place on the output page.
func nativeKernel(fn lambda.NativeFn, nargs int) engine.ApplyKernel {
	return func(ctx *engine.Ctx, in []engine.Column) (engine.Column, error) {
		if len(in) != nargs {
			return nil, fmt.Errorf("core: native lambda expects %d inputs, got %d", nargs, len(in))
		}
		n := in[0].Len()
		nctx := &lambda.NativeCtx{Alloc: ctx.Alloc(), Reg: ctx.Reg}
		args := make([]object.Value, len(in))
		out := make([]object.Value, n)
		for i := 0; i < n; i++ {
			for j, c := range in {
				args[j] = c.Value(i)
			}
			v, err := fn(nctx, args)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return engine.ColumnOf(out), nil
	}
}

// binaryKernel composes two columns with a higher-order operator. Monomorphic
// fast paths cover the common float64/int64/string/bool pairings; a boxed
// fallback handles mixed kinds.
func binaryKernel(op lambda.Op) engine.ApplyKernel {
	return func(ctx *engine.Ctx, in []engine.Column) (engine.Column, error) {
		if len(in) != 2 {
			return nil, fmt.Errorf("core: binary %s expects 2 inputs", op)
		}
		l, r := in[0], in[1]
		if l.Len() != r.Len() {
			return nil, fmt.Errorf("core: binary %s over mismatched lengths %d/%d", op, l.Len(), r.Len())
		}
		switch op {
		case lambda.OpAnd, lambda.OpOr:
			lb, lok := l.(engine.BoolCol)
			rb, rok := r.(engine.BoolCol)
			if !lok || !rok {
				return nil, fmt.Errorf("core: %s over non-boolean columns", op)
			}
			out := make(engine.BoolCol, len(lb))
			if op == lambda.OpAnd {
				for i := range lb {
					out[i] = lb[i] && rb[i]
				}
			} else {
				for i := range lb {
					out[i] = lb[i] || rb[i]
				}
			}
			return out, nil
		}

		if lf, ok := l.(engine.F64Col); ok {
			if rf, ok := r.(engine.F64Col); ok {
				return f64Binary(op, lf, rf)
			}
		}
		if li, ok := l.(engine.I64Col); ok {
			if ri, ok := r.(engine.I64Col); ok {
				return i64Binary(op, li, ri)
			}
		}
		if ls, ok := l.(engine.StrCol); ok {
			if rs, ok := r.(engine.StrCol); ok {
				return strBinary(op, ls, rs)
			}
		}
		return boxedBinary(op, l, r)
	}
}

func f64Binary(op lambda.Op, l, r engine.F64Col) (engine.Column, error) {
	n := len(l)
	switch op {
	case lambda.OpEq, lambda.OpNe, lambda.OpGt, lambda.OpGe, lambda.OpLt, lambda.OpLe:
		out := make(engine.BoolCol, n)
		for i := 0; i < n; i++ {
			out[i] = cmpBool(op, l[i] == r[i], l[i] < r[i])
		}
		return out, nil
	case lambda.OpAdd:
		out := make(engine.F64Col, n)
		for i := range out {
			out[i] = l[i] + r[i]
		}
		return out, nil
	case lambda.OpSub:
		out := make(engine.F64Col, n)
		for i := range out {
			out[i] = l[i] - r[i]
		}
		return out, nil
	case lambda.OpMul:
		out := make(engine.F64Col, n)
		for i := range out {
			out[i] = l[i] * r[i]
		}
		return out, nil
	case lambda.OpDiv:
		out := make(engine.F64Col, n)
		for i := range out {
			out[i] = l[i] / r[i]
		}
		return out, nil
	}
	return nil, fmt.Errorf("core: unsupported float op %s", op)
}

func i64Binary(op lambda.Op, l, r engine.I64Col) (engine.Column, error) {
	n := len(l)
	switch op {
	case lambda.OpEq, lambda.OpNe, lambda.OpGt, lambda.OpGe, lambda.OpLt, lambda.OpLe:
		out := make(engine.BoolCol, n)
		for i := 0; i < n; i++ {
			out[i] = cmpBool(op, l[i] == r[i], l[i] < r[i])
		}
		return out, nil
	case lambda.OpAdd:
		out := make(engine.I64Col, n)
		for i := range out {
			out[i] = l[i] + r[i]
		}
		return out, nil
	case lambda.OpSub:
		out := make(engine.I64Col, n)
		for i := range out {
			out[i] = l[i] - r[i]
		}
		return out, nil
	case lambda.OpMul:
		out := make(engine.I64Col, n)
		for i := range out {
			out[i] = l[i] * r[i]
		}
		return out, nil
	case lambda.OpDiv:
		out := make(engine.I64Col, n)
		for i := range out {
			if r[i] == 0 {
				return nil, fmt.Errorf("core: integer division by zero")
			}
			out[i] = l[i] / r[i]
		}
		return out, nil
	}
	return nil, fmt.Errorf("core: unsupported int op %s", op)
}

func strBinary(op lambda.Op, l, r engine.StrCol) (engine.Column, error) {
	n := len(l)
	switch op {
	case lambda.OpEq, lambda.OpNe, lambda.OpGt, lambda.OpGe, lambda.OpLt, lambda.OpLe:
		out := make(engine.BoolCol, n)
		for i := 0; i < n; i++ {
			out[i] = cmpBool(op, l[i] == r[i], l[i] < r[i])
		}
		return out, nil
	case lambda.OpAdd:
		out := make(engine.StrCol, n)
		for i := range out {
			out[i] = l[i] + r[i]
		}
		return out, nil
	}
	return nil, fmt.Errorf("core: unsupported string op %s", op)
}

func boxedBinary(op lambda.Op, l, r engine.Column) (engine.Column, error) {
	n := l.Len()
	switch op {
	case lambda.OpEq, lambda.OpNe, lambda.OpGt, lambda.OpGe, lambda.OpLt, lambda.OpLe:
		out := make(engine.BoolCol, n)
		for i := 0; i < n; i++ {
			lv, rv := l.Value(i), r.Value(i)
			out[i] = cmpBool(op, lv.Equal(rv), lv.Less(rv))
		}
		return out, nil
	case lambda.OpAdd, lambda.OpSub, lambda.OpMul, lambda.OpDiv:
		out := make(engine.F64Col, n)
		for i := 0; i < n; i++ {
			a, b := l.Value(i).AsFloat64(), r.Value(i).AsFloat64()
			switch op {
			case lambda.OpAdd:
				out[i] = a + b
			case lambda.OpSub:
				out[i] = a - b
			case lambda.OpMul:
				out[i] = a * b
			default:
				out[i] = a / b
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("core: unsupported boxed op %s", op)
}

func cmpBool(op lambda.Op, eq, lt bool) bool {
	switch op {
	case lambda.OpEq:
		return eq
	case lambda.OpNe:
		return !eq
	case lambda.OpLt:
		return lt
	case lambda.OpLe:
		return lt || eq
	case lambda.OpGt:
		return !lt && !eq
	case lambda.OpGe:
		return !lt
	}
	return false
}

// notKernel negates a boolean column.
func notKernel() engine.ApplyKernel {
	return func(ctx *engine.Ctx, in []engine.Column) (engine.Column, error) {
		bc, ok := in[0].(engine.BoolCol)
		if !ok {
			return nil, fmt.Errorf("core: ! over non-boolean column")
		}
		out := make(engine.BoolCol, len(bc))
		for i, b := range bc {
			out[i] = !b
		}
		return out, nil
	}
}
