// Package core implements PlinyCompute's primary contribution glue: the
// Computation toolkit (SelectionComp, JoinComp, AggregateComp,
// MultiSelectionComp — paper §4), the TCAP compiler that lowers user-written
// lambda term construction functions into optimizable TCAP programs (paper
// §5), and the executor that runs physical plans over the vectorized engine.
package core

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/lambda"
	"repro/internal/object"
)

// Computation is a node in a user's query graph. Users build graphs from
// the concrete types below and hand the sinks (Write computations) to
// Compile; the system decides join orders, join algorithms, and
// materialization — "declarative in the large".
type Computation interface {
	// Inputs returns upstream computations.
	Inputs() []Computation
	// label is the computation-kind prefix used to name the compiled
	// Computation ("Sel", "Join", ...).
	label() string
}

// Scan reads a stored set of registered objects.
type Scan struct {
	Db, Set  string
	TypeName string
}

// Inputs returns no inputs (Scan is a source).
func (s *Scan) Inputs() []Computation { return nil }
func (s *Scan) label() string         { return "Scan" }

// NewScan creates a set reader (the paper's ObjectReader).
func NewScan(db, set, typeName string) *Scan { return &Scan{Db: db, Set: set, TypeName: typeName} }

// Write stores its input computation's output into a set (the paper's
// Writer).
type Write struct {
	Db, Set string
	In      Computation
}

// Inputs returns the written computation.
func (w *Write) Inputs() []Computation { return []Computation{w.In} }
func (w *Write) label() string         { return "Out" }

// NewWrite creates a set writer.
func NewWrite(db, set string, in Computation) *Write { return &Write{Db: db, Set: set, In: in} }

// Selection is SelectionComp: relational selection plus projection over one
// input. Predicate and Projection are lambda term construction functions
// (paper §4); a nil Predicate accepts everything, a nil Projection is the
// identity.
type Selection struct {
	In         Computation
	ArgType    string
	Predicate  func(arg *lambda.Arg) lambda.Term
	Projection func(arg *lambda.Arg) lambda.Term
}

// Inputs returns the single input.
func (s *Selection) Inputs() []Computation { return []Computation{s.In} }
func (s *Selection) label() string         { return "Sel" }

// MultiSelection is MultiSelectionComp: selection with a set-valued
// projection. Projection must produce a handle to a PC Vector; each element
// becomes one output object (lowered to FLATTEN).
type MultiSelection struct {
	In         Computation
	ArgType    string
	Predicate  func(arg *lambda.Arg) lambda.Term
	Projection func(arg *lambda.Arg) lambda.Term
}

// Inputs returns the single input.
func (m *MultiSelection) Inputs() []Computation { return []Computation{m.In} }
func (m *MultiSelection) label() string         { return "MSel" }

// JoinKind selects a join's output semantics. Inner joins emit one row per
// matching pair; semi joins emit each left row with at least one match; anti
// joins emit each left row with no match. The outer kinds additionally emit
// the unmatched rows of one (left/right) or both (full) sides, null-extended.
type JoinKind int

// Join kinds. Semi and anti joins are binary (exactly two inputs) and keep
// only left-side objects, so they need no Projection. The outer kinds
// (left/right/full) are accepted by the cluster's callback join API
// (Cluster.HashPartitionJoinKind), which surfaces the absent side of a
// null-extended row as object.NilRef; the lambda/TCAP compiler does not
// lower them (a lambda projection cannot observe an absent input).
const (
	JoinInner JoinKind = iota
	JoinSemi
	JoinAnti
	JoinLeft
	JoinRight
	JoinFull
)

// Join is JoinComp: a join of arbitrary arity and arbitrary predicate. The
// compiler analyzes the predicate's lambda term, extracts equi-join
// conjuncts to drive hash joins, re-verifies them after probing, and pushes
// the rest into post-join filters (which the optimizer may then push below
// the join). The user never specifies join order or algorithm.
//
// Kind selects the join semantics. JoinSemi/JoinAnti require exactly two
// inputs and a predicate that is a single equi-join conjunct; the left input
// streams through as the probe side, the right input builds an exact key-value
// set (no hash-collision re-verification is needed), and the output is the
// left-side object — Projection must be nil.
type Join struct {
	In         []Computation
	ArgTypes   []string
	Kind       JoinKind
	Predicate  func(args []*lambda.Arg) lambda.Term
	Projection func(args []*lambda.Arg) lambda.Term
}

// Inputs returns all join inputs.
func (j *Join) Inputs() []Computation { return j.In }
func (j *Join) label() string         { return "Join" }

// Aggregate is AggregateComp: for each input object it extracts a key and a
// value (lambda terms), combines values per key with an associative Combine,
// and finalizes each (key, aggregate) pair into an output object.
type Aggregate struct {
	In      Computation
	ArgType string

	// Name, when non-empty, identifies this aggregation in a registered
	// aggregation family ("family|arg|arg|..."), making the computation
	// shippable: the compiler records it in the AGGREGATE statement's Info
	// and Rebuild resolves it back to an identical spec on the receiving
	// side (Combine/Finalize are native Go closures and cannot cross a
	// process boundary by value). Anonymous aggregations (empty Name) work
	// exactly as before but only execute in the process that built them.
	Name string

	Key func(arg *lambda.Arg) lambda.Term
	Val func(arg *lambda.Arg) lambda.Term

	KeyKind object.Kind
	ValKind object.Kind

	Combine  engine.CombineFn
	Finalize func(a *object.Allocator, key, val object.Value) (object.Ref, error)
}

// Inputs returns the single input.
func (a *Aggregate) Inputs() []Computation { return []Computation{a.In} }
func (a *Aggregate) label() string         { return "Agg" }

// SortKey is one ordering key of an OrderBy or Window: a lambda term
// extracting the key from the input object, the key's scalar kind, and the
// sort direction. NULL-valued keys (terms evaluating to an invalid Value)
// sort before every present value in ascending order and after in
// descending order.
type SortKey struct {
	Term func(arg *lambda.Arg) lambda.Term
	Kind object.Kind
	Desc bool
}

// OrderBy is the ORDER BY / top-k computation: it totally orders its input
// on Keys (in precedence order, stable in the input's arrival order) and,
// when Limit is positive, keeps only the first Limit objects. Distributed
// execution is a merge network: per-thread sorted runs merge into one run
// per worker, the runs stream over the exchange, and the consumer merges
// them — with a bounded-heap fast path when Limit is set.
type OrderBy struct {
	In      Computation
	ArgType string
	Keys    []SortKey
	Limit   int
}

// Inputs returns the single input.
func (o *OrderBy) Inputs() []Computation { return []Computation{o.In} }
func (o *OrderBy) label() string         { return "Sort" }

// Distinct deduplicates its input on a key, emitting one output object per
// distinct key value via Make. It rides the aggregation path as a keys-only
// sink (the running "value" is the key itself, combined keep-first), so it
// inherits the agg path's shuffle, swiss-table probing, and recovery for
// free. Key kinds follow the same rules as Aggregate keys.
type Distinct struct {
	In      Computation
	ArgType string
	Key     func(arg *lambda.Arg) lambda.Term
	KeyKind object.Kind
	Make    func(a *object.Allocator, key object.Value) (object.Ref, error)
}

// Inputs returns the single input.
func (d *Distinct) Inputs() []Computation { return []Computation{d.In} }
func (d *Distinct) label() string         { return "Dist" }

// Window is a window-style running aggregate over the sorted stream: the
// input is totally ordered on Keys exactly like OrderBy, then each object's
// Val is folded into a running accumulator with Combine (in sorted order),
// and Emit produces one output object per input object from the object and
// the accumulator's value at that point — e.g. a running total ordered by
// date. The fold happens on the consumer side of the sort's merge network,
// so the running value is globally consistent across workers.
type Window struct {
	In      Computation
	ArgType string
	Keys    []SortKey
	Val     func(arg *lambda.Arg) lambda.Term
	ValKind object.Kind
	Combine engine.CombineFn
	Emit    func(a *object.Allocator, obj object.Ref, running object.Value) (object.Ref, error)
}

// Inputs returns the single input.
func (w *Window) Inputs() []Computation { return []Computation{w.In} }
func (w *Window) label() string         { return "Win" }

// topoOrder returns every computation reachable from the sinks in
// dependency order (inputs before consumers).
func topoOrder(sinks []Computation) ([]Computation, error) {
	var order []Computation
	state := map[Computation]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(c Computation) error
	visit = func(c Computation) error {
		switch state[c] {
		case 1:
			return fmt.Errorf("core: computation graph has a cycle")
		case 2:
			return nil
		}
		state[c] = 1
		for _, in := range c.Inputs() {
			if in == nil {
				return fmt.Errorf("core: %T has a nil input", c)
			}
			if err := visit(in); err != nil {
				return err
			}
		}
		state[c] = 2
		order = append(order, c)
		return nil
	}
	for _, s := range sinks {
		if err := visit(s); err != nil {
			return nil, err
		}
	}
	return order, nil
}
