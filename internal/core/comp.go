// Package core implements PlinyCompute's primary contribution glue: the
// Computation toolkit (SelectionComp, JoinComp, AggregateComp,
// MultiSelectionComp — paper §4), the TCAP compiler that lowers user-written
// lambda term construction functions into optimizable TCAP programs (paper
// §5), and the executor that runs physical plans over the vectorized engine.
package core

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/lambda"
	"repro/internal/object"
)

// Computation is a node in a user's query graph. Users build graphs from
// the concrete types below and hand the sinks (Write computations) to
// Compile; the system decides join orders, join algorithms, and
// materialization — "declarative in the large".
type Computation interface {
	// Inputs returns upstream computations.
	Inputs() []Computation
	// label is the computation-kind prefix used to name the compiled
	// Computation ("Sel", "Join", ...).
	label() string
}

// Scan reads a stored set of registered objects.
type Scan struct {
	Db, Set  string
	TypeName string
}

// Inputs returns no inputs (Scan is a source).
func (s *Scan) Inputs() []Computation { return nil }
func (s *Scan) label() string         { return "Scan" }

// NewScan creates a set reader (the paper's ObjectReader).
func NewScan(db, set, typeName string) *Scan { return &Scan{Db: db, Set: set, TypeName: typeName} }

// Write stores its input computation's output into a set (the paper's
// Writer).
type Write struct {
	Db, Set string
	In      Computation
}

// Inputs returns the written computation.
func (w *Write) Inputs() []Computation { return []Computation{w.In} }
func (w *Write) label() string         { return "Out" }

// NewWrite creates a set writer.
func NewWrite(db, set string, in Computation) *Write { return &Write{Db: db, Set: set, In: in} }

// Selection is SelectionComp: relational selection plus projection over one
// input. Predicate and Projection are lambda term construction functions
// (paper §4); a nil Predicate accepts everything, a nil Projection is the
// identity.
type Selection struct {
	In         Computation
	ArgType    string
	Predicate  func(arg *lambda.Arg) lambda.Term
	Projection func(arg *lambda.Arg) lambda.Term
}

// Inputs returns the single input.
func (s *Selection) Inputs() []Computation { return []Computation{s.In} }
func (s *Selection) label() string         { return "Sel" }

// MultiSelection is MultiSelectionComp: selection with a set-valued
// projection. Projection must produce a handle to a PC Vector; each element
// becomes one output object (lowered to FLATTEN).
type MultiSelection struct {
	In         Computation
	ArgType    string
	Predicate  func(arg *lambda.Arg) lambda.Term
	Projection func(arg *lambda.Arg) lambda.Term
}

// Inputs returns the single input.
func (m *MultiSelection) Inputs() []Computation { return []Computation{m.In} }
func (m *MultiSelection) label() string         { return "MSel" }

// Join is JoinComp: a join of arbitrary arity and arbitrary predicate. The
// compiler analyzes the predicate's lambda term, extracts equi-join
// conjuncts to drive hash joins, re-verifies them after probing, and pushes
// the rest into post-join filters (which the optimizer may then push below
// the join). The user never specifies join order or algorithm.
type Join struct {
	In         []Computation
	ArgTypes   []string
	Predicate  func(args []*lambda.Arg) lambda.Term
	Projection func(args []*lambda.Arg) lambda.Term
}

// Inputs returns all join inputs.
func (j *Join) Inputs() []Computation { return j.In }
func (j *Join) label() string         { return "Join" }

// Aggregate is AggregateComp: for each input object it extracts a key and a
// value (lambda terms), combines values per key with an associative Combine,
// and finalizes each (key, aggregate) pair into an output object.
type Aggregate struct {
	In      Computation
	ArgType string

	// Name, when non-empty, identifies this aggregation in a registered
	// aggregation family ("family|arg|arg|..."), making the computation
	// shippable: the compiler records it in the AGGREGATE statement's Info
	// and Rebuild resolves it back to an identical spec on the receiving
	// side (Combine/Finalize are native Go closures and cannot cross a
	// process boundary by value). Anonymous aggregations (empty Name) work
	// exactly as before but only execute in the process that built them.
	Name string

	Key func(arg *lambda.Arg) lambda.Term
	Val func(arg *lambda.Arg) lambda.Term

	KeyKind object.Kind
	ValKind object.Kind

	Combine  engine.CombineFn
	Finalize func(a *object.Allocator, key, val object.Value) (object.Ref, error)
}

// Inputs returns the single input.
func (a *Aggregate) Inputs() []Computation { return []Computation{a.In} }
func (a *Aggregate) label() string         { return "Agg" }

// topoOrder returns every computation reachable from the sinks in
// dependency order (inputs before consumers).
func topoOrder(sinks []Computation) ([]Computation, error) {
	var order []Computation
	state := map[Computation]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(c Computation) error
	visit = func(c Computation) error {
		switch state[c] {
		case 1:
			return fmt.Errorf("core: computation graph has a cycle")
		case 2:
			return nil
		}
		state[c] = 1
		for _, in := range c.Inputs() {
			if in == nil {
				return fmt.Errorf("core: %T has a nil input", c)
			}
			if err := visit(in); err != nil {
				return err
			}
		}
		state[c] = 2
		order = append(order, c)
		return nil
	}
	for _, s := range sinks {
		if err := visit(s); err != nil {
			return nil, err
		}
	}
	return order, nil
}
