package core

import (
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/object"
	"repro/internal/physical"
	"repro/internal/tcap"
)

// SetStore abstracts the storage layer the executor reads input sets from
// and writes result sets to. The in-process storage server and the
// distributed storage manager both implement it.
type SetStore interface {
	// Pages returns the pages of a stored set (each holding a root
	// Vector<Handle>).
	Pages(db, set string) ([]*object.Page, error)
	// Append adds result pages to a set.
	Append(db, set string, pages []*object.Page) error
}

// Executor runs a compiled query graph's physical plan on a single process
// — the building block the distributed scheduler replicates per worker. It
// drives stages through the same engine.RunPipelineThreads /
// MergeAggMapsParallel machinery the cluster uses, so local ablations and
// tests exercise the identical code path at any Threads setting.
type Executor struct {
	Store      SetStore
	Reg        *object.Registry
	PageSize   int
	Partitions int
	// Threads is the executor-thread budget per stage (the single-process
	// analogue of cluster Config.Threads). Zero or one runs sequentially.
	Threads int
	// MorselPages, when positive, replaces the static SplitRanges chunk
	// assignment with the shared morsel dispatcher (the single-process
	// analogue of cluster Config.MorselPages): threads pull morsels of up
	// to MorselPages batch ranges and results merge in morsel index order,
	// so output is bit-for-bit identical to the static path. Zero keeps
	// static splitting.
	MorselPages int
	// NoSwissTable disables the swiss hash structures on the agg and join
	// paths (the single-process analogue of cluster Config.NoSwissTable):
	// join tables revert to Go maps, aggregation probes to OMap's own
	// chain. Results and page bytes are bit-for-bit identical either way.
	NoSwissTable bool
	Stats        engine.Stats
}

// NewExecutor creates an executor with the given storage and type registry,
// running stages sequentially (Threads 1); set Threads for intra-stage
// parallelism.
func NewExecutor(store SetStore, reg *object.Registry, pageSize, partitions int) *Executor {
	if pageSize <= 0 {
		pageSize = 1 << 18
	}
	if partitions <= 0 {
		partitions = 4
	}
	return &Executor{Store: store, Reg: reg, PageSize: pageSize, Partitions: partitions}
}

// threads normalizes the configured thread budget.
func (e *Executor) threads() int {
	if e.Threads < 1 {
		return 1
	}
	return e.Threads
}

// Run compiles nothing — it executes an already compiled and planned query.
// Artifacts (materialized intermediates, join tables, pre-aggregated maps)
// flow between stages through an in-memory artifact table.
func (e *Executor) Run(res *CompileResult, plan *physical.Plan) error {
	arts := &artifacts{pages: map[string][]*object.Page{}, tables: map[string]*engine.JoinTable{},
		runs: map[string][][]*object.Page{}}
	for _, stage := range plan.Stages {
		var err error
		switch stage.Kind {
		case physical.StagePipeline:
			err = e.runPipelineStage(res, stage, arts)
		case physical.StageAggregation:
			err = e.runAggregationStage(res, stage, arts)
		case physical.StageSortMerge:
			err = e.runSortMergeStage(res, stage, arts)
		default:
			err = fmt.Errorf("core: unknown stage kind %d", stage.Kind)
		}
		if err != nil {
			return fmt.Errorf("core: stage %d (%s): %w", stage.ID, stage.Produces, err)
		}
	}
	return nil
}

type artifacts struct {
	pages  map[string][]*object.Page // "mat:X" and "aggmaps:X"
	tables map[string]*engine.JoinTable
	runs   map[string][][]*object.Page // "sortruns:X": sorted runs in source order
}

func (e *Executor) sourcePages(stage *physical.JobStage, arts *artifacts) ([]*object.Page, error) {
	if stage.Scan != nil {
		return e.Store.Pages(stage.Scan.Db, stage.Scan.Set)
	}
	pages, ok := arts.pages["mat:"+stage.SourceList]
	if !ok {
		return nil, fmt.Errorf("missing materialized source %q", stage.SourceList)
	}
	return pages, nil
}

// newStageSink builds one executor thread's private sink for a pipeline
// stage, charging page counters to the thread's stats.
func (e *Executor) newStageSink(res *CompileResult, stage *physical.JobStage, stats *engine.Stats) (engine.Sink, error) {
	switch stage.Sink {
	case physical.SinkOutput, physical.SinkMaterialize:
		return engine.NewOutputSink(e.Reg, e.PageSize, nil, stats)
	case physical.SinkPreAgg:
		spec := res.AggSpecs[stage.SinkStmt.Out.Name]
		if spec == nil {
			return nil, fmt.Errorf("no aggregation spec for %q", stage.SinkStmt.Out.Name)
		}
		sink, err := engine.NewAggSink(e.Reg, e.PageSize, e.Partitions, spec.KeyKind, spec.ValKind,
			spec.Combine, stage.SinkStmt.Applied.Cols[0], stage.SinkStmt.Applied.Cols[1], nil, stats)
		if err != nil {
			return nil, err
		}
		sink.NoSwiss = e.NoSwissTable
		return sink, nil
	case physical.SinkJoinBuild:
		if jt := stage.SinkStmt.Info["joinType"]; jt == "semi" || jt == "anti" {
			// Semi/anti joins build an exact key-value set from the raw key
			// column — no hash table, so NoSwissTable is moot.
			return engine.NewKeySetBuildSink(stage.SinkStmt.Applied2.Cols[0]), nil
		}
		sink := engine.NewJoinBuildSink(stage.SinkStmt.Applied2.Cols[0], stage.SinkStmt.Copied2.Cols[0])
		if e.NoSwissTable {
			sink.Table = engine.NewMapJoinTable()
		}
		return sink, nil
	case physical.SinkSort:
		spec := res.SortSpecs[stage.SinkStmt.Out.Name]
		if spec == nil {
			return nil, fmt.Errorf("no sort spec for %q", stage.SinkStmt.Out.Name)
		}
		keyCols := stage.SinkStmt.Applied.Cols[:spec.NumKeys]
		valCol := ""
		if spec.Window {
			valCol = stage.SinkStmt.Applied.Cols[spec.NumKeys]
		}
		return engine.NewSortSink(e.Reg, e.PageSize, keyCols, stage.SinkStmt.Copied.Cols[0],
			valCol, spec.Desc, spec.Limit, nil, stats)
	default:
		return nil, fmt.Errorf("unknown sink kind %v", stage.Sink)
	}
}

func (e *Executor) runPipelineStage(res *CompileResult, stage *physical.JobStage, arts *artifacts) error {
	pages, err := e.sourcePages(stage, arts)
	if err != nil {
		return err
	}

	// The sink-side stmt for OUTPUT consumes Applied columns; synthesize
	// one for materialization sinks (write the final object column).
	sinkStmt := stage.SinkStmt
	if stage.Sink == physical.SinkMaterialize {
		last := stage.Stmts[len(stage.Stmts)-1]
		col, err := materializeColumn(res, stage, last)
		if err != nil {
			return err
		}
		sinkStmt = &tcap.Stmt{
			Op:      tcap.OpOutput,
			Applied: tcap.ColumnsRef{Name: last.Out.Name, Cols: []string{col}},
		}
	}

	if e.MorselPages > 0 {
		return e.runPipelineStageMorsels(res, stage, arts, sinkStmt, pages)
	}

	chunks := engine.SplitRanges(engine.BatchRanges(pages, engine.BatchSize), e.threads())
	if len(chunks) == 0 {
		// No input: a single empty chunk still builds the sink, so the
		// stage's artifact contract (possibly empty pages, an empty join
		// table) is honored.
		chunks = [][]engine.PageRange{nil}
	}

	pt, err := engine.RunPipelineThreads(chunks, stage.SourceCol, stage.Stmts, res.Stages, sinkStmt,
		func(t int, stats *engine.Stats, _ <-chan struct{}) (engine.Sink, *engine.Ctx, error) {
			sink, err := e.newStageSink(res, stage, stats)
			if err != nil {
				return nil, nil, err
			}
			ctx, err := engine.NewSinkCtx(sink, e.Reg, arts.tables, e.PageSize, nil, stats)
			if err != nil {
				return nil, nil, err
			}
			return sink, ctx, nil
		}, nil)
	pt.MergeStatsInto(&e.Stats)
	if err != nil {
		return err
	}

	switch stage.Sink {
	case physical.SinkOutput:
		outPages := pt.OutputPages()
		for _, p := range outPages {
			p.SetManaged(false)
		}
		return e.Store.Append(stage.SinkStmt.Db, stage.SinkStmt.Set, outPages)
	case physical.SinkMaterialize:
		arts.pages[stage.Produces] = pt.OutputPages()
	case physical.SinkPreAgg:
		merged, err := pt.MergeAggSinks(nil)
		if err != nil {
			return err
		}
		arts.pages[stage.Produces] = merged
	case physical.SinkJoinBuild:
		arts.tables[stage.SinkStmt.Applied2.Name] = pt.MergeJoinTables(nil)
	case physical.SinkSort:
		// Each thread's sink sealed one sorted run; chunks are contiguous,
		// so thread order is source order — the merge's stability tie-break.
		runs := make([][]*object.Page, 0, len(pt.Sinks))
		for _, s := range pt.Sinks {
			runs = append(runs, s.Pages())
		}
		arts.runs[stage.Produces] = runs
	}
	return nil
}

// runPipelineStageMorsels is runPipelineStage's morsel-mode body: executor
// threads pull fixed-size morsels from the shared dispatcher, each morsel
// runs through a private sink, and the ordered releaser folds each
// morsel's result into the stage artifact strictly in morsel index order —
// output pages concatenate in source order, pre-aggregated maps absorb
// into the first morsel's sink (associative combine over an ordered
// concatenation), and join tables merge bucket-wise so per-bucket row
// order matches a sequential build.
func (e *Executor) runPipelineStageMorsels(res *CompileResult, stage *physical.JobStage,
	arts *artifacts, sinkStmt *tcap.Stmt, pages []*object.Page) error {
	morsels := engine.MorselRanges(engine.BatchRanges(pages, engine.BatchSize), e.MorselPages)
	var (
		outPages []*object.Page
		primary  *engine.AggSink
		table    *engine.JoinTable
		runs     [][]*object.Page
	)
	mk := func(m int, stats *engine.Stats, _ <-chan struct{}) (engine.Sink, *engine.Ctx, error) {
		sink, err := e.newStageSink(res, stage, stats)
		if err != nil {
			return nil, nil, err
		}
		ctx, err := engine.NewSinkCtx(sink, e.Reg, arts.tables, e.PageSize, nil, stats)
		if err != nil {
			return nil, nil, err
		}
		return sink, ctx, nil
	}
	emit := func(m int, sink engine.Sink, ctx *engine.Ctx, _ <-chan struct{}) error {
		switch s := sink.(type) {
		case *engine.AggSink:
			if primary == nil {
				primary = s
				return nil
			}
			return primary.AbsorbPages(s.Pages())
		case *engine.JoinBuildSink:
			if table == nil {
				table = s.Table
			} else {
				table.Merge(s.Table)
			}
			return nil
		case *engine.SortSink:
			// One sorted run per morsel, released in morsel index order —
			// source order, the same tie-break the static path gets from
			// contiguous chunks.
			runs = append(runs, s.Pages())
			return nil
		default:
			outPages = append(outPages, sink.Pages()...)
			return nil
		}
	}
	mstats, err := engine.RunPipelineMorsels(morsels, stage.SourceCol, stage.Stmts, res.Stages,
		sinkStmt, e.threads(), mk, emit)
	for t := range mstats {
		e.Stats.Merge(&mstats[t])
	}
	if err != nil {
		return err
	}
	switch stage.Sink {
	case physical.SinkOutput:
		for _, p := range outPages {
			p.SetManaged(false)
		}
		return e.Store.Append(stage.SinkStmt.Db, stage.SinkStmt.Set, outPages)
	case physical.SinkMaterialize:
		arts.pages[stage.Produces] = outPages
	case physical.SinkPreAgg:
		arts.pages[stage.Produces] = primary.Pages()
	case physical.SinkJoinBuild:
		arts.tables[stage.SinkStmt.Applied2.Name] = table
	case physical.SinkSort:
		arts.runs[stage.Produces] = runs
	}
	return nil
}

// materializeColumn decides which column a materialization sink writes: the
// single column downstream consumers reference, falling back to the list's
// only column.
func materializeColumn(res *CompileResult, stage *physical.JobStage, last *tcap.Stmt) (string, error) {
	if len(last.Out.Cols) == 1 {
		return last.Out.Cols[0], nil
	}
	name := stage.Produces[len("mat:"):]
	_ = name
	// The planner guarantees single-column boundaries; multiple columns
	// mean the final object column is the newest one.
	newCols := last.NewColumns()
	if len(newCols) == 1 {
		return newCols[0], nil
	}
	return "", fmt.Errorf("cannot determine materialization column of %s", last.Out)
}

// runSortMergeStage is the consuming stage of a distributed sort: it merges
// the producer stage's sorted runs (in run order — source order) into the
// global stable order, applies the top-k limit, and materializes the output
// objects onto fresh pages (AppendToRoot's cross-page push deep-copies each
// object off its run page). A window computation folds its running aggregate
// over the merged stream here, emitting one output object per input row.
func (e *Executor) runSortMergeStage(res *CompileResult, stage *physical.JobStage, arts *artifacts) error {
	spec := res.SortSpecs[stage.AggList]
	if spec == nil {
		return fmt.Errorf("no sort spec for %q", stage.AggList)
	}
	runs, ok := arts.runs["sortruns:"+stage.AggList]
	if !ok {
		return fmt.Errorf("missing sorted runs for %q", stage.AggList)
	}
	sink, err := engine.NewOutputSink(e.Reg, e.PageSize, nil, &e.Stats)
	if err != nil {
		return err
	}
	out := sink.Out
	m := engine.NewSortMerger(e.Reg, runs, spec.Limit)
	ws := res.WindowSpecs[stage.AggList]
	if spec.Window && ws == nil {
		return fmt.Errorf("no window spec for %q", stage.AggList)
	}
	var running object.Value
	exists := false
	for {
		_, obj, val, ok := m.Next()
		if !ok {
			break
		}
		if ws == nil {
			if err := engine.AppendToRoot(out, obj); err != nil {
				return err
			}
			continue
		}
		running, err = ws.Combine(out.Alloc, running, exists, val)
		if err != nil {
			return err
		}
		exists = true
		emitted, err := ws.Emit(out.Alloc, obj, running)
		if errors.Is(err, object.ErrPageFull) {
			if err = out.Rotate(); err == nil {
				emitted, err = ws.Emit(out.Alloc, obj, running)
			}
		}
		if err != nil {
			return err
		}
		if err := engine.AppendToRoot(out, emitted); err != nil {
			return err
		}
	}
	arts.pages[stage.Produces] = out.Pages()
	return nil
}

// runAggregationStage is the consuming stage of a local aggregation: every
// partition is merged (hash-range sub-partitioned across e.Threads, like a
// cluster worker merging its partition) and finalized. At Threads > 1 the
// partitions themselves also run concurrently — the single-process
// analogue of the cluster's workers consuming their partitions in parallel
// — with per-partition output pages concatenated in partition order, so
// the result page sequence matches the sequential schedule exactly.
func (e *Executor) runAggregationStage(res *CompileResult, stage *physical.JobStage, arts *artifacts) error {
	spec := res.AggSpecs[stage.AggList]
	if spec == nil {
		return fmt.Errorf("no aggregation spec for %q", stage.AggList)
	}
	mapPages, ok := arts.pages["aggmaps:"+stage.AggList]
	if !ok {
		return fmt.Errorf("missing pre-aggregated maps for %q", stage.AggList)
	}
	perPart := make([][]*object.Page, e.Partitions)
	pstats := make([]engine.Stats, e.Partitions)
	var mergeOpts []engine.MergeOpt
	if e.NoSwissTable {
		mergeOpts = append(mergeOpts, engine.NoSwissMerge())
	}
	runPart := func(part int) error {
		finals, _, err := engine.MergeAggMapsParallel(e.Reg, mapPages, part, e.Partitions,
			spec, e.PageSize, nil, e.threads(), mergeOpts...)
		if err != nil {
			return err
		}
		pages, err := engine.FinalizeAggParallel(e.Reg, finals, spec, e.PageSize, nil, &pstats[part])
		if err != nil {
			return err
		}
		perPart[part] = pages
		return nil
	}
	var err error
	if e.threads() > 1 {
		err = engine.ParallelFor(e.Partitions, runPart)
	} else {
		for part := 0; part < e.Partitions && err == nil; part++ {
			err = runPart(part)
		}
	}
	for part := range pstats {
		e.Stats.Merge(&pstats[part])
	}
	if err != nil {
		return err
	}
	var outPages []*object.Page
	for _, pages := range perPart {
		outPages = append(outPages, pages...)
	}
	arts.pages[stage.Produces] = outPages
	return nil
}

// MemStore is a simple in-memory SetStore for tests and examples.
type MemStore struct {
	Sets map[string][]*object.Page
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{Sets: map[string][]*object.Page{}} }

// Pages returns the pages of a set.
func (m *MemStore) Pages(db, set string) ([]*object.Page, error) {
	pages, ok := m.Sets[db+"."+set]
	if !ok {
		return nil, fmt.Errorf("core: unknown set %s.%s", db, set)
	}
	return pages, nil
}

// Append adds pages to a set (creating it on first write).
func (m *MemStore) Append(db, set string, pages []*object.Page) error {
	key := db + "." + set
	m.Sets[key] = append(m.Sets[key], pages...)
	return nil
}
