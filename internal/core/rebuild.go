package core

// Rebuild is the receiving half of program shipping: a worker OS process
// (cmd/pcworker) gets a job as optimized TCAP text — the same rendering the
// master fingerprints — and reconstructs an executable CompileResult from
// it. The TCAP Info entries the compiler records are the whole contract:
// every APPLY carries enough Info to rebuild its kernel, SCAN carries its
// type binding, and a *named* AGGREGATE carries the family name that
// resolves its Combine/Finalize on this side of the process boundary.
//
// What cannot cross the boundary stays explicit: method-call kernels,
// opaque native functions that were never registered by name, anonymous
// aggregations, and joins all return a "not shippable" error instead of
// silently executing something different from what the master compiled.

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/lambda"
	"repro/internal/object"
	"repro/internal/tcap"
)

// AggFamilyFn builds one aggregation family member's spec from the
// pipe-separated arguments of its name ("sumI64|Rec|grp|val" calls the
// "sumI64" family with ["Rec", "grp", "val"]). The registry holds the
// session's registered user types, so Finalize can resolve its output
// layout by name.
type AggFamilyFn func(args []string, reg *object.Registry) (*engine.AggSpec, error)

var (
	rebuildMu   sync.RWMutex
	aggFamilies = map[string]AggFamilyFn{}
	nativeFns   = map[string]struct {
		fn    lambda.NativeFn
		nargs int
	}{}
)

// RegisterAggFamily registers a named aggregation family (typically from a
// package init, so master and worker binaries that import the same package
// agree on the name). Re-registering a prefix replaces it.
func RegisterAggFamily(prefix string, fn AggFamilyFn) {
	rebuildMu.Lock()
	aggFamilies[prefix] = fn
	rebuildMu.Unlock()
}

// RegisterNativeFn registers a named native function so APPLY statements
// with Info type "native" survive shipping. The name must match the
// lambda.Native's Name on the compiling side.
func RegisterNativeFn(name string, fn lambda.NativeFn, nargs int) {
	rebuildMu.Lock()
	nativeFns[name] = struct {
		fn    lambda.NativeFn
		nargs int
	}{fn, nargs}
	rebuildMu.Unlock()
}

// Rebuild parses a shipped TCAP program and reconstructs its executable
// CompileResult against reg's registered types.
func Rebuild(progText string, reg *object.Registry) (*CompileResult, error) {
	prog, err := tcap.Parse(progText)
	if err != nil {
		return nil, fmt.Errorf("core: rebuilding shipped program: %w", err)
	}
	res := &CompileResult{
		Prog:     prog,
		Stages:   engine.NewStageRegistry(),
		AggSpecs: map[string]*engine.AggSpec{},
		Scans:    map[string]ScanBinding{},
	}
	for _, s := range prog.Stmts {
		switch s.Op {
		case tcap.OpScan:
			res.Scans[s.Out.Name] = ScanBinding{Db: s.Db, Set: s.Set, TypeName: s.Info["typeName"]}
		case tcap.OpApply:
			k, err := rebuildKernel(s)
			if err != nil {
				return nil, err
			}
			res.Stages.Register(s.Comp, s.Stage, k)
		case tcap.OpAggregate:
			spec, err := rebuildAggSpec(s, reg)
			if err != nil {
				return nil, err
			}
			res.AggSpecs[s.Out.Name] = spec
		case tcap.OpJoin:
			return nil, fmt.Errorf("core: JOIN statements are not shippable (stmt %q)", s.Out.Name)
		case tcap.OpFilter, tcap.OpHash, tcap.OpFlatten, tcap.OpOutput:
			// Structural statements: the engine executes them without a
			// registered kernel (the compiler registers none either).
		}
	}
	return res, nil
}

// rebuildKernel reconstructs one APPLY statement's kernel from its Info.
func rebuildKernel(s *tcap.Stmt) (engine.ApplyKernel, error) {
	switch s.Info["type"] {
	case "attAccess":
		return memberKernel(s.Info["attName"]), nil
	case "methodCall":
		return nil, fmt.Errorf("core: method-call kernel %q is not shippable (stmt %q)",
			s.Info["methodName"], s.Out.Name)
	case "const":
		v, err := rebuildConst(s)
		if err != nil {
			return nil, err
		}
		return constKernel(v), nil
	case "native":
		rebuildMu.RLock()
		def, ok := nativeFns[s.Info["name"]]
		rebuildMu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("core: native function %q is not registered on this side (stmt %q)",
				s.Info["name"], s.Out.Name)
		}
		if def.nargs != len(s.Applied.Cols) {
			return nil, fmt.Errorf("core: native function %q takes %d args, statement %q applies %d",
				s.Info["name"], def.nargs, s.Out.Name, len(s.Applied.Cols))
		}
		return nativeKernel(def.fn, def.nargs), nil
	case "equalityCheck", "comparison", "arith":
		return binaryKernel(lambda.Op(s.Info["op"])), nil
	case "bool":
		if s.Info["op"] == "!" {
			return notKernel(), nil
		}
		return binaryKernel(lambda.Op(s.Info["op"])), nil
	default:
		return nil, fmt.Errorf("core: unknown APPLY kernel type %q (stmt %q)", s.Info["type"], s.Out.Name)
	}
}

// rebuildConst reconstructs a constant's exact value from the lossless
// "kind"/"cval" Info pair constInfo wrote at compile time.
func rebuildConst(s *tcap.Stmt) (object.Value, error) {
	kindStr, ok := s.Info["kind"]
	if !ok {
		return object.Value{}, fmt.Errorf("core: const statement %q lacks a machine-readable value", s.Out.Name)
	}
	kind, err := strconv.Atoi(kindStr)
	if err != nil {
		return object.Value{}, fmt.Errorf("core: const statement %q: bad kind %q", s.Out.Name, kindStr)
	}
	cval := s.Info["cval"]
	switch object.Kind(kind) {
	case object.KBool:
		b, err := strconv.ParseBool(cval)
		if err != nil {
			return object.Value{}, fmt.Errorf("core: const statement %q: %w", s.Out.Name, err)
		}
		return object.BoolValue(b), nil
	case object.KInt32:
		i, err := strconv.ParseInt(cval, 10, 32)
		if err != nil {
			return object.Value{}, fmt.Errorf("core: const statement %q: %w", s.Out.Name, err)
		}
		return object.Int32Value(int32(i)), nil
	case object.KInt64:
		i, err := strconv.ParseInt(cval, 10, 64)
		if err != nil {
			return object.Value{}, fmt.Errorf("core: const statement %q: %w", s.Out.Name, err)
		}
		return object.Int64Value(i), nil
	case object.KFloat64:
		f, err := strconv.ParseFloat(cval, 64)
		if err != nil {
			return object.Value{}, fmt.Errorf("core: const statement %q: %w", s.Out.Name, err)
		}
		return object.Float64Value(f), nil
	case object.KString:
		return object.StringValue(cval), nil
	default:
		return object.Value{}, fmt.Errorf("core: const statement %q: unshippable kind %d", s.Out.Name, kind)
	}
}

// rebuildAggSpec resolves a named aggregation's family spec from the
// AGGREGATE statement's Info.
func rebuildAggSpec(s *tcap.Stmt, reg *object.Registry) (*engine.AggSpec, error) {
	name := s.Info["agg"]
	if name == "" {
		return nil, fmt.Errorf("core: anonymous aggregation %q is not shippable (set Aggregate.Name)", s.Out.Name)
	}
	parts := strings.Split(name, "|")
	rebuildMu.RLock()
	fn, ok := aggFamilies[parts[0]]
	rebuildMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: aggregation family %q is not registered on this side (stmt %q)",
			parts[0], s.Out.Name)
	}
	spec, err := fn(parts[1:], reg)
	if err != nil {
		return nil, fmt.Errorf("core: aggregation %q: %w", name, err)
	}
	return spec, nil
}
