package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/lambda"
	"repro/internal/object"
	"repro/internal/tcap"
)

// TestFigure1Pipeline reproduces Figure 1: the first four stages of the
// §5.2 three-way-join TCAP pipeline, executed stage by stage over a vector
// list, observing the column evolution the figure draws:
//
//	stage 1 (att_acc):     dep,emp,sup          -> +nm1 (Dep.deptName)
//	stage 2 (method_call): dep,emp,sup,nm1      -> +nm2 (Emp::getDeptName())
//	stage 3 (==):          nm1,nm2              -> +bl  (bit vector)
//	stage 4 (FILTER):      dep,emp,sup filtered by bl
func TestFigure1Pipeline(t *testing.T) {
	reg := object.NewRegistry()
	dep := object.NewStruct("Dep").AddField("deptName", object.KString).MustBuild(reg)
	emp := object.NewStruct("Emp").AddField("deptName", object.KString).MustBuild(reg)
	emp.Methods["getDeptName"] = object.Method{Name: "getDeptName", Ret: object.KString,
		Fn: func(r object.Ref) object.Value {
			return object.StringValue(object.GetStrField(r, emp.Field("deptName")))
		}}
	sup := object.NewStruct("Sup").AddField("dept", object.KString).MustBuild(reg)

	p := object.NewPage(1<<16, reg)
	a := object.NewAllocator(p, object.PolicyLightweightReuse)
	mk := func(ti *object.TypeInfo, field, val string) object.Ref {
		r, err := a.MakeObject(ti)
		if err != nil {
			t.Fatal(err)
		}
		if err := object.SetStrField(a, r, ti.Field(field), val); err != nil {
			t.Fatal(err)
		}
		return r
	}
	// Three candidate (dep, emp, sup) combinations; the middle one has a
	// department mismatch and must be filtered out.
	deps := engine.RefCol{mk(dep, "deptName", "eng"), mk(dep, "deptName", "hr"), mk(dep, "deptName", "ops")}
	emps := engine.RefCol{mk(emp, "deptName", "eng"), mk(emp, "deptName", "sales"), mk(emp, "deptName", "ops")}
	sups := engine.RefCol{mk(sup, "dept", "eng"), mk(sup, "dept", "hr"), mk(sup, "dept", "ops")}

	// The four TCAP statements of Figure 1, in the paper's own naming.
	prog, err := tcap.Parse(`
In(dep,emp,sup) <= SCAN('db', 'three', 'Join_2212', []);
WDNm_1(dep,emp,sup,nm1) <= APPLY(In(dep), In(dep,emp,sup), 'Join_2212', 'att_acc_1', [('attName', 'deptName'), ('type', 'attAccess')]);
WDNm_2(dep,emp,sup,nm1,nm2) <= APPLY(WDNm_1(emp), WDNm_1(dep,emp,sup,nm1), 'Join_2212', 'method_call_2', [('methodName', 'getDeptName'), ('type', 'methodCall')]);
WBl_1(dep,emp,sup,bl) <= APPLY(WDNm_2(nm1,nm2), WDNm_2(dep,emp,sup), 'Join_2212', '==_3', [('type', 'equalityCheck')]);
Flt_1(dep,emp,sup) <= FILTER(WBl_1(bl), WBl_1(dep,emp,sup), 'Join_2212', []);
`)
	if err != nil {
		t.Fatal(err)
	}
	stages := engine.NewStageRegistry()
	stages.Register("Join_2212", "att_acc_1", memberKernel("deptName"))
	stages.Register("Join_2212", "method_call_2", methodKernel("getDeptName"))
	stages.Register("Join_2212", "==_3", binaryKernel(lambda.OpEq))

	out, err := engine.NewOutputPageSet(reg, 1<<16, object.PolicyLightweightReuse, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &engine.Ctx{Reg: reg, Out: out}
	vl := &engine.VectorList{Names: []string{"dep", "emp", "sup"}, Cols: []engine.Column{deps, emps, sups}}

	// Execute the non-scan statements one by one, checking the columns
	// Figure 1 shows being appended.
	pipe := &engine.Pipeline{Stmts: prog.Stmts[1:2], Reg: stages}
	_ = pipe
	cur := vl
	run := func(idx int) *engine.VectorList {
		t.Helper()
		next, err := engine.ExecuteStmtForTest(ctx, stages, prog.Stmts[idx], cur)
		if err != nil {
			t.Fatal(err)
		}
		return next
	}
	cur = run(1)
	if nm1 := cur.Col("nm1"); nm1 == nil {
		t.Fatal("stage 1 did not produce nm1")
	} else if nm1.(engine.StrCol)[0] != "eng" {
		t.Errorf("nm1[0] = %v", nm1.Value(0))
	}
	cur = run(2)
	if nm2 := cur.Col("nm2"); nm2 == nil {
		t.Fatal("stage 2 did not produce nm2")
	} else if nm2.(engine.StrCol)[1] != "sales" {
		t.Errorf("nm2[1] = %v", nm2.Value(1))
	}
	cur = run(3)
	bl, ok := cur.Col("bl").(engine.BoolCol)
	if !ok {
		t.Fatal("stage 3 did not produce a boolean bit vector")
	}
	if !bl[0] || bl[1] || !bl[2] {
		t.Errorf("bit vector = %v, want [true false true]", bl)
	}
	cur = run(4)
	if cur.Rows() != 2 {
		t.Fatalf("filtered rows = %d, want 2", cur.Rows())
	}
	// Only matching departments remain.
	kept := cur.Col("dep").(engine.RefCol)
	if object.GetStrField(kept[0], dep.Field("deptName")) != "eng" ||
		object.GetStrField(kept[1], dep.Field("deptName")) != "ops" {
		t.Error("wrong rows survived the filter")
	}
}
