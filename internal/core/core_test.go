package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/lambda"
	"repro/internal/object"
	"repro/internal/physical"
	"repro/internal/tcap"
)

// testSchema registers the Emp/Sup schema used across compiler/executor
// tests (the paper's §7 running example).
type testSchema struct {
	reg *object.Registry
	emp *object.TypeInfo
	sup *object.TypeInfo
}

func newTestSchema() *testSchema {
	reg := object.NewRegistry()
	s := &testSchema{reg: reg}
	s.sup = object.NewStruct("Sup").
		AddField("name", object.KString).
		AddField("dept", object.KString).
		MustBuild(reg)
	s.emp = object.NewStruct("Emp").
		AddField("name", object.KString).
		AddField("salary", object.KFloat64).
		AddField("supervisor", object.KString).
		MustBuild(reg)
	emp := s.emp
	emp.Methods["getSalary"] = object.Method{Name: "getSalary", Ret: object.KFloat64,
		Fn: func(r object.Ref) object.Value {
			return object.Float64Value(object.GetF64(r, emp.Field("salary")))
		}}
	emp.Methods["getSupervisor"] = object.Method{Name: "getSupervisor", Ret: object.KString,
		Fn: func(r object.Ref) object.Value {
			return object.StringValue(object.GetStrField(r, emp.Field("supervisor")))
		}}
	return s
}

// loadSet fills a MemStore set with n objects built by fill.
func loadSet(t testing.TB, store *MemStore, reg *object.Registry, db, set string, n int,
	fill func(a *object.Allocator, i int) (object.Ref, error)) {
	t.Helper()
	const pageSize = 1 << 16
	newPage := func() (*object.Page, *object.Allocator, object.Vector) {
		p := object.NewPage(pageSize, reg)
		a := object.NewAllocator(p, object.PolicyLightweightReuse)
		root, err := object.MakeVector(a, object.KHandle, 0)
		if err != nil {
			t.Fatal(err)
		}
		root.Retain()
		p.SetRoot(root.Off)
		return p, a, root
	}
	p, a, root := newPage()
	var pages []*object.Page
	for i := 0; i < n; i++ {
		r, err := fill(a, i)
		if errors.Is(err, object.ErrPageFull) {
			pages = append(pages, p)
			p, a, root = newPage()
			if r, err = fill(a, i); err != nil {
				t.Fatal(err)
			}
		} else if err != nil {
			t.Fatal(err)
		}
		if err := root.PushBackHandle(a, r); err != nil {
			t.Fatal(err)
		}
	}
	pages = append(pages, p)
	if err := store.Append(db, set, pages); err != nil {
		t.Fatal(err)
	}
}

func (s *testSchema) loadEmployees(t testing.TB, store *MemStore, n int) {
	emp := s.emp
	loadSet(t, store, s.reg, "db", "emps", n, func(a *object.Allocator, i int) (object.Ref, error) {
		e, err := a.MakeObject(emp)
		if err != nil {
			return object.NilRef, err
		}
		if err := object.SetStrField(a, e, emp.Field("name"), fmt.Sprintf("emp%d", i)); err != nil {
			return object.NilRef, err
		}
		object.SetF64(e, emp.Field("salary"), float64(i)*1000)
		if err := object.SetStrField(a, e, emp.Field("supervisor"), fmt.Sprintf("sup%d", i%10)); err != nil {
			return object.NilRef, err
		}
		return e, nil
	})
}

func (s *testSchema) loadSupervisors(t testing.TB, store *MemStore, n int) {
	sup := s.sup
	loadSet(t, store, s.reg, "db", "sups", n, func(a *object.Allocator, i int) (object.Ref, error) {
		sp, err := a.MakeObject(sup)
		if err != nil {
			return object.NilRef, err
		}
		if err := object.SetStrField(a, sp, sup.Field("name"), fmt.Sprintf("sup%d", i)); err != nil {
			return object.NilRef, err
		}
		if err := object.SetStrField(a, sp, sup.Field("dept"), fmt.Sprintf("dept%d", i%3)); err != nil {
			return object.NilRef, err
		}
		return sp, nil
	})
}

// resultRefs reads back all objects from a result set.
func resultRefs(t testing.TB, store *MemStore, db, set string) []object.Ref {
	t.Helper()
	pages, err := store.Pages(db, set)
	if err != nil {
		t.Fatal(err)
	}
	var out []object.Ref
	for _, p := range pages {
		if p.Root() == 0 {
			continue
		}
		root := object.AsVector(object.Ref{Page: p, Off: p.Root()})
		for i := 0; i < root.Len(); i++ {
			out = append(out, root.HandleAt(i))
		}
	}
	return out
}

func runGraph(t testing.TB, s *testSchema, store *MemStore, writes ...*Write) *CompileResult {
	t.Helper()
	res, err := Compile(writes...)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := physical.Build(res.Prog)
	if err != nil {
		t.Fatalf("plan: %v\nTCAP:\n%s", err, res.Prog.Print())
	}
	ex := NewExecutor(store, s.reg, 1<<16, 4)
	if err := ex.Run(res, plan); err != nil {
		t.Fatalf("run: %v\nTCAP:\n%s\nPLAN:\n%s", err, res.Prog.Print(), plan.String())
	}
	return res
}

func TestCompileSelectionTCAPShape(t *testing.T) {
	// The paper §7 example: getSalary() > 50000 && getSalary() < 100000
	// compiles to two methodCall APPLYs (redundancy removed later by the
	// optimizer, not the compiler).
	sel := &Selection{
		In:      NewScan("db", "emps", "Emp"),
		ArgType: "Emp",
		Predicate: func(emp *lambda.Arg) lambda.Term {
			return lambda.And(
				lambda.Gt(lambda.FromMethod(emp, "getSalary"), lambda.ConstF64(50000)),
				lambda.Lt(lambda.FromMethod(emp, "getSalary"), lambda.ConstF64(100000)),
			)
		},
	}
	res, err := Compile(NewWrite("db", "out", sel))
	if err != nil {
		t.Fatal(err)
	}
	text := res.Prog.Print()
	if got := strings.Count(text, "'methodCall'"); got != 2 {
		t.Errorf("methodCall APPLY count = %d, want 2 (pre-optimization)\n%s", got, text)
	}
	if got := strings.Count(text, "FILTER"); got != 1 {
		t.Errorf("FILTER count = %d, want 1\n%s", got, text)
	}
	if err := res.Prog.Validate(); err != nil {
		t.Errorf("invalid TCAP: %v", err)
	}
	// The printed program must round-trip through the parser.
	if _, err := tcap.Parse(text); err != nil {
		t.Errorf("printed TCAP does not re-parse: %v\n%s", err, text)
	}
}

func TestExecuteSelectionFilter(t *testing.T) {
	s := newTestSchema()
	store := NewMemStore()
	s.loadEmployees(t, store, 100)

	sel := &Selection{
		In:      NewScan("db", "emps", "Emp"),
		ArgType: "Emp",
		Predicate: func(emp *lambda.Arg) lambda.Term {
			return lambda.Gt(lambda.FromMethod(emp, "getSalary"), lambda.ConstF64(50000))
		},
	}
	runGraph(t, s, store, NewWrite("db", "rich", sel))

	got := resultRefs(t, store, "db", "rich")
	if len(got) != 49 { // salaries 51000..99000
		t.Fatalf("result count = %d, want 49", len(got))
	}
	for _, r := range got {
		if sal := object.GetF64(r, s.emp.Field("salary")); sal <= 50000 {
			t.Errorf("unfiltered salary %g", sal)
		}
	}
}

func TestExecuteSelectionWithNativeProjection(t *testing.T) {
	s := newTestSchema()
	store := NewMemStore()
	s.loadEmployees(t, store, 50)

	// Project each Emp into a fresh Sup-typed object whose name is the
	// employee's supervisor — exercising in-place allocation on output
	// pages via the native context.
	sup := s.sup
	emp := s.emp
	sel := &Selection{
		In:      NewScan("db", "emps", "Emp"),
		ArgType: "Emp",
		Projection: func(arg *lambda.Arg) lambda.Term {
			return lambda.FromNative("makeSup", object.KHandle,
				func(ctx *lambda.NativeCtx, args []object.Value) (object.Value, error) {
					e := args[0].H
					out, err := ctx.Alloc.MakeObject(sup)
					if err != nil {
						return object.Value{}, err
					}
					name := object.GetStrField(e, emp.Field("supervisor"))
					if err := object.SetStrField(ctx.Alloc, out, sup.Field("name"), name); err != nil {
						return object.Value{}, err
					}
					return object.HandleValue(out), nil
				},
				lambda.FromSelf(arg))
		},
	}
	runGraph(t, s, store, NewWrite("db", "projected", sel))

	got := resultRefs(t, store, "db", "projected")
	if len(got) != 50 {
		t.Fatalf("result count = %d, want 50", len(got))
	}
	for i, r := range got {
		if r.TypeCode() != sup.Code {
			t.Fatalf("result %d has type %d, want Sup", i, r.TypeCode())
		}
		if !strings.HasPrefix(object.GetStrField(r, sup.Field("name")), "sup") {
			t.Errorf("bad projected name %q", object.GetStrField(r, sup.Field("name")))
		}
	}
}

func TestExecuteTwoWayJoin(t *testing.T) {
	s := newTestSchema()
	store := NewMemStore()
	s.loadEmployees(t, store, 60)   // supervisors sup0..sup9
	s.loadSupervisors(t, store, 10) // sup0..sup9

	emp, sup := s.emp, s.sup
	join := &Join{
		In:       []Computation{NewScan("db", "emps", "Emp"), NewScan("db", "sups", "Sup")},
		ArgTypes: []string{"Emp", "Sup"},
		Predicate: func(args []*lambda.Arg) lambda.Term {
			return lambda.And(
				lambda.Gt(lambda.FromMethod(args[0], "getSalary"), lambda.ConstF64(30000)),
				lambda.Eq(lambda.FromMethod(args[0], "getSupervisor"),
					lambda.FromMember(args[1], "name")),
			)
		},
		Projection: func(args []*lambda.Arg) lambda.Term {
			return lambda.FromNative("pairName", object.KHandle,
				func(ctx *lambda.NativeCtx, vals []object.Value) (object.Value, error) {
					out, err := ctx.Alloc.MakeObject(sup)
					if err != nil {
						return object.Value{}, err
					}
					n := object.GetStrField(vals[0].H, emp.Field("name")) + "/" +
						object.GetStrField(vals[1].H, sup.Field("name"))
					if err := object.SetStrField(ctx.Alloc, out, sup.Field("name"), n); err != nil {
						return object.Value{}, err
					}
					return object.HandleValue(out), nil
				},
				lambda.FromSelf(args[0]), lambda.FromSelf(args[1]))
		},
	}
	runGraph(t, s, store, NewWrite("db", "joined", join))

	got := resultRefs(t, store, "db", "joined")
	// Employees with salary > 30000: 31..59 => 29 rows, each matching
	// exactly one supervisor.
	if len(got) != 29 {
		t.Fatalf("join result count = %d, want 29", len(got))
	}
	for _, r := range got {
		name := object.GetStrField(r, sup.Field("name"))
		if !strings.Contains(name, "/sup") {
			t.Errorf("bad joined name %q", name)
		}
	}
}

func TestExecuteAggregate(t *testing.T) {
	s := newTestSchema()
	store := NewMemStore()
	s.loadEmployees(t, store, 100)

	emp := s.emp
	// Sum salaries per supervisor (string key, float64 value).
	agg := &Aggregate{
		In:      NewScan("db", "emps", "Emp"),
		ArgType: "Emp",
		Key: func(arg *lambda.Arg) lambda.Term {
			return lambda.FromMethod(arg, "getSupervisor")
		},
		Val: func(arg *lambda.Arg) lambda.Term {
			return lambda.FromMethod(arg, "getSalary")
		},
		KeyKind: object.KString,
		ValKind: object.KFloat64,
		Combine: func(a *object.Allocator, cur object.Value, exists bool, next object.Value) (object.Value, error) {
			if !exists {
				return next, nil
			}
			return object.Float64Value(cur.F + next.F), nil
		},
		Finalize: func(a *object.Allocator, key, val object.Value) (object.Ref, error) {
			out, err := a.MakeObject(emp)
			if err != nil {
				return object.NilRef, err
			}
			if err := object.SetStrField(a, out, emp.Field("name"), key.S); err != nil {
				return object.NilRef, err
			}
			object.SetF64(out, emp.Field("salary"), val.F)
			return out, nil
		},
	}
	runGraph(t, s, store, NewWrite("db", "bysup", agg))

	got := resultRefs(t, store, "db", "bysup")
	if len(got) != 10 {
		t.Fatalf("aggregate groups = %d, want 10", len(got))
	}
	total := 0.0
	for _, r := range got {
		total += object.GetF64(r, s.emp.Field("salary"))
	}
	want := 0.0
	for i := 0; i < 100; i++ {
		want += float64(i) * 1000
	}
	if total != want {
		t.Errorf("sum of sums = %g, want %g", total, want)
	}
}

func TestExecuteMultiSelection(t *testing.T) {
	reg := object.NewRegistry()
	order := object.NewStruct("Order").
		AddField("items", object.KHandle). // Vector<int64> of part ids
		MustBuild(reg)
	part := object.NewStruct("PartRef").
		AddField("id", object.KInt64).
		MustBuild(reg)
	s := &testSchema{reg: reg}

	store := NewMemStore()
	loadSet(t, store, reg, "db", "orders", 20, func(a *object.Allocator, i int) (object.Ref, error) {
		o, err := a.MakeObject(order)
		if err != nil {
			return object.NilRef, err
		}
		// Order i has i%4 items: each item j is a PartRef object.
		items, err := object.MakeVector(a, object.KHandle, 0)
		if err != nil {
			return object.NilRef, err
		}
		for j := 0; j < i%4; j++ {
			pr, err := a.MakeObject(part)
			if err != nil {
				return object.NilRef, err
			}
			object.SetI64(pr, part.Field("id"), int64(i*100+j))
			if err := items.PushBackHandle(a, pr); err != nil {
				return object.NilRef, err
			}
		}
		if err := object.SetHandleField(a, o, order.Field("items"), items.Ref); err != nil {
			return object.NilRef, err
		}
		return o, nil
	})

	msel := &MultiSelection{
		In:      NewScan("db", "orders", "Order"),
		ArgType: "Order",
		Projection: func(arg *lambda.Arg) lambda.Term {
			return lambda.FromMember(arg, "items")
		},
	}
	runGraph(t, s, store, NewWrite("db", "flat", msel))

	got := resultRefs(t, store, "db", "flat")
	want := 0
	for i := 0; i < 20; i++ {
		want += i % 4
	}
	if len(got) != want {
		t.Fatalf("flattened count = %d, want %d", len(got), want)
	}
	for _, r := range got {
		if r.TypeCode() != part.Code {
			t.Fatalf("flattened element has wrong type %d", r.TypeCode())
		}
	}
}

func TestExecuteThreeWayJoinFromPaper(t *testing.T) {
	// The §4 Dep/Emp/Sup three-way join on department name.
	reg := object.NewRegistry()
	dep := object.NewStruct("Dep").AddField("deptName", object.KString).MustBuild(reg)
	emp := object.NewStruct("Emp2").
		AddField("deptName", object.KString).
		AddField("id", object.KInt64).
		MustBuild(reg)
	sup := object.NewStruct("Sup2").
		AddField("dept", object.KString).
		AddField("id", object.KInt64).
		MustBuild(reg)
	emp.Methods["getDeptName"] = object.Method{Name: "getDeptName", Ret: object.KString,
		Fn: func(r object.Ref) object.Value {
			return object.StringValue(object.GetStrField(r, emp.Field("deptName")))
		}}
	sup.Methods["getDept"] = object.Method{Name: "getDept", Ret: object.KString,
		Fn: func(r object.Ref) object.Value {
			return object.StringValue(object.GetStrField(r, sup.Field("dept")))
		}}
	s := &testSchema{reg: reg}
	store := NewMemStore()
	deptName := func(i int) string { return fmt.Sprintf("d%d", i) }
	loadSet(t, store, reg, "db", "deps", 4, func(a *object.Allocator, i int) (object.Ref, error) {
		d, err := a.MakeObject(dep)
		if err != nil {
			return object.NilRef, err
		}
		return d, object.SetStrField(a, d, dep.Field("deptName"), deptName(i))
	})
	loadSet(t, store, reg, "db", "emps2", 12, func(a *object.Allocator, i int) (object.Ref, error) {
		e, err := a.MakeObject(emp)
		if err != nil {
			return object.NilRef, err
		}
		object.SetI64(e, emp.Field("id"), int64(i))
		return e, object.SetStrField(a, e, emp.Field("deptName"), deptName(i%4))
	})
	loadSet(t, store, reg, "db", "sups2", 8, func(a *object.Allocator, i int) (object.Ref, error) {
		sp, err := a.MakeObject(sup)
		if err != nil {
			return object.NilRef, err
		}
		object.SetI64(sp, sup.Field("id"), int64(i))
		return sp, object.SetStrField(a, sp, sup.Field("dept"), deptName(i%4))
	})

	join := &Join{
		In: []Computation{
			NewScan("db", "deps", "Dep"),
			NewScan("db", "emps2", "Emp2"),
			NewScan("db", "sups2", "Sup2"),
		},
		ArgTypes: []string{"Dep", "Emp2", "Sup2"},
		Predicate: func(args []*lambda.Arg) lambda.Term {
			return lambda.And(
				lambda.Eq(lambda.FromMember(args[0], "deptName"),
					lambda.FromMethod(args[1], "getDeptName")),
				lambda.Eq(lambda.FromMember(args[0], "deptName"),
					lambda.FromMethod(args[2], "getDept")),
			)
		},
		Projection: func(args []*lambda.Arg) lambda.Term {
			return lambda.FromSelf(args[0]) // keep the Dep object
		},
	}
	runGraph(t, s, store, NewWrite("db", "threeway", join))

	got := resultRefs(t, store, "db", "threeway")
	// Per dept: 3 emps × 2 sups = 6 combinations; 4 depts => 24 rows.
	if len(got) != 24 {
		t.Fatalf("three-way join rows = %d, want 24", len(got))
	}
}

func TestPlanShapesForJoin(t *testing.T) {
	s := newTestSchema()
	_ = s
	join := &Join{
		In:       []Computation{NewScan("db", "emps", "Emp"), NewScan("db", "sups", "Sup")},
		ArgTypes: []string{"Emp", "Sup"},
		Predicate: func(args []*lambda.Arg) lambda.Term {
			return lambda.Eq(lambda.FromMethod(args[0], "getSupervisor"),
				lambda.FromMember(args[1], "name"))
		},
		Projection: func(args []*lambda.Arg) lambda.Term { return lambda.FromSelf(args[0]) },
	}
	res, err := Compile(NewWrite("db", "out", join))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := physical.Build(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	// Expect exactly two pipelines: the build side and the probe side.
	var builds, probes int
	for _, st := range plan.Stages {
		switch st.Sink {
		case physical.SinkJoinBuild:
			builds++
		case physical.SinkOutput:
			probes++
		}
	}
	if builds != 1 || probes != 1 {
		t.Errorf("plan has %d build and %d output pipelines, want 1/1:\n%s", builds, probes, plan.String())
	}
	// The probe stage must depend on the build stage's table.
	for _, st := range plan.Stages {
		if st.Sink == physical.SinkOutput {
			found := false
			for _, d := range st.DependsOn {
				if strings.HasPrefix(d, "table:") {
					found = true
				}
			}
			if !found {
				t.Error("probe pipeline does not depend on the join table")
			}
		}
	}
}

func TestEngineStatsAccumulate(t *testing.T) {
	s := newTestSchema()
	store := NewMemStore()
	s.loadEmployees(t, store, 1000)
	sel := &Selection{
		In:      NewScan("db", "emps", "Emp"),
		ArgType: "Emp",
		Predicate: func(emp *lambda.Arg) lambda.Term {
			return lambda.Gt(lambda.FromMethod(emp, "getSalary"), lambda.ConstF64(-1))
		},
	}
	res, err := Compile(NewWrite("db", "all", sel))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := physical.Build(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(store, s.reg, 1<<16, 4)
	if err := ex.Run(res, plan); err != nil {
		t.Fatal(err)
	}
	if ex.Stats.Rows < 1000 {
		t.Errorf("stats rows = %d, want >= 1000", ex.Stats.Rows)
	}
	if ex.Stats.Batches < 1000/engine.BatchSize {
		t.Errorf("stats batches = %d too low", ex.Stats.Batches)
	}
}
