package core

import (
	"strings"
	"testing"

	"repro/internal/lambda"
	"repro/internal/object"
	"repro/internal/physical"
)

func TestCompileRejectsBadGraphs(t *testing.T) {
	// Join with fewer than two inputs.
	j := &Join{In: []Computation{NewScan("db", "a", "T")}, ArgTypes: []string{"T"},
		Predicate:  func(args []*lambda.Arg) lambda.Term { return lambda.ConstF64(1) },
		Projection: func(args []*lambda.Arg) lambda.Term { return lambda.FromSelf(args[0]) }}
	if _, err := Compile(NewWrite("db", "o", j)); err == nil {
		t.Error("join with one input should fail to compile")
	}

	// Join with mismatched arg types.
	j2 := &Join{In: []Computation{NewScan("db", "a", "T"), NewScan("db", "b", "T")},
		ArgTypes:   []string{"T"},
		Predicate:  func(args []*lambda.Arg) lambda.Term { return lambda.ConstF64(1) },
		Projection: func(args []*lambda.Arg) lambda.Term { return lambda.FromSelf(args[0]) }}
	if _, err := Compile(NewWrite("db", "o", j2)); err == nil {
		t.Error("join with wrong ArgTypes arity should fail")
	}

	// Self-join of the same computation instance.
	scan := NewScan("db", "a", "T")
	j3 := &Join{In: []Computation{scan, scan}, ArgTypes: []string{"T", "T"},
		Predicate: func(args []*lambda.Arg) lambda.Term {
			return lambda.Eq(lambda.FromMember(args[0], "x"), lambda.FromMember(args[1], "x"))
		},
		Projection: func(args []*lambda.Arg) lambda.Term { return lambda.FromSelf(args[0]) }}
	if _, err := Compile(NewWrite("db", "o", j3)); err == nil ||
		!strings.Contains(err.Error(), "reuses the same computation") {
		t.Errorf("self-join of one instance should be rejected, got %v", err)
	}

	// Aggregate missing pieces.
	agg := &Aggregate{In: NewScan("db", "a", "T"), ArgType: "T"}
	if _, err := Compile(NewWrite("db", "o", agg)); err == nil {
		t.Error("aggregate without Key/Val/Combine/Finalize should fail")
	}

	// MultiSelection without projection.
	ms := &MultiSelection{In: NewScan("db", "a", "T"), ArgType: "T"}
	if _, err := Compile(NewWrite("db", "o", ms)); err == nil {
		t.Error("multi-selection without projection should fail")
	}

	// Nil input.
	if _, err := Compile(NewWrite("db", "o", &Selection{In: nil, ArgType: "T"})); err == nil {
		t.Error("nil input should fail")
	}
}

func TestCrossJoinFallbackWithoutEquiKey(t *testing.T) {
	// No equi conjunct between the inputs: the compiler falls back to a
	// constant-key cross join, still filtered by the full predicate.
	s := newTestSchema()
	store := NewMemStore()
	s.loadEmployees(t, store, 10)
	s.loadSupervisors(t, store, 4)

	join := &Join{
		In:       []Computation{NewScan("db", "emps", "Emp"), NewScan("db", "sups", "Sup")},
		ArgTypes: []string{"Emp", "Sup"},
		Predicate: func(args []*lambda.Arg) lambda.Term {
			// Pure inequality: not an equi-join key.
			return lambda.Gt(lambda.FromMethod(args[0], "getSalary"), lambda.ConstF64(5000))
		},
		Projection: func(args []*lambda.Arg) lambda.Term { return lambda.FromSelf(args[0]) },
	}
	runGraph(t, s, store, NewWrite("db", "cross", join))
	got := resultRefs(t, store, "db", "cross")
	// Employees 6..9 qualify (salary > 5000), each crossed with 4 sups.
	if len(got) != 4*4 {
		t.Fatalf("cross join rows = %d, want 16", len(got))
	}
}

func TestRuntimeErrorsSurfaceCleanly(t *testing.T) {
	s := newTestSchema()
	store := NewMemStore()
	s.loadEmployees(t, store, 5)

	// Unknown member: compiles (the compiler cannot know every type's
	// layout) but fails at execution with a clear error.
	sel := &Selection{
		In:      NewScan("db", "emps", "Emp"),
		ArgType: "Emp",
		Predicate: func(emp *lambda.Arg) lambda.Term {
			return lambda.Gt(lambda.FromMember(emp, "noSuchField"), lambda.ConstF64(0))
		},
	}
	res, err := Compile(NewWrite("db", "out", sel))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := physical.Build(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(store, s.reg, 1<<16, 2)
	if err := ex.Run(res, plan); err == nil || !strings.Contains(err.Error(), "noSuchField") {
		t.Errorf("expected member-not-found error, got %v", err)
	}

	// Unknown method likewise.
	sel2 := &Selection{
		In:      NewScan("db", "emps", "Emp"),
		ArgType: "Emp",
		Predicate: func(emp *lambda.Arg) lambda.Term {
			return lambda.Gt(lambda.FromMethod(emp, "noSuchMethod"), lambda.ConstF64(0))
		},
	}
	res2, err := Compile(NewWrite("db", "out2", sel2))
	if err != nil {
		t.Fatal(err)
	}
	plan2, _ := physical.Build(res2.Prog)
	if err := ex.Run(res2, plan2); err == nil || !strings.Contains(err.Error(), "noSuchMethod") {
		t.Errorf("expected method-not-found error, got %v", err)
	}
}

func TestPipelineSplitsOversizedBatches(t *testing.T) {
	// Tiny output pages force the engine to rotate and recursively split
	// batches (Appendix C's out-of-memory fault handling); results must
	// still be exact.
	s := newTestSchema()
	store := NewMemStore()
	s.loadEmployees(t, store, 300)

	sup := s.sup
	sel := &Selection{
		In:      NewScan("db", "emps", "Emp"),
		ArgType: "Emp",
		Projection: func(arg *lambda.Arg) lambda.Term {
			return lambda.FromNative("fatProjection", object.KHandle,
				func(ctx *lambda.NativeCtx, args []object.Value) (object.Value, error) {
					out, err := ctx.Alloc.MakeObject(sup)
					if err != nil {
						return object.Value{}, err
					}
					// A chunky string to fill pages fast.
					if err := object.SetStrField(ctx.Alloc, out, sup.Field("name"),
						strings.Repeat("x", 64)); err != nil {
						return object.Value{}, err
					}
					return object.HandleValue(out), nil
				}, lambda.FromSelf(arg))
		},
	}
	res, err := Compile(NewWrite("db", "fat", sel))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := physical.Build(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(store, s.reg, 4096, 2) // 4 KB pages
	if err := ex.Run(res, plan); err != nil {
		t.Fatal(err)
	}
	if got := len(resultRefs(t, store, "db", "fat")); got != 300 {
		t.Fatalf("result count = %d, want 300", got)
	}
	if ex.Stats.PagesSealed < 2 {
		t.Errorf("tiny pages should seal several (got %d)", ex.Stats.PagesSealed)
	}
	if ex.Stats.PageRetries == 0 {
		t.Error("expected page-full retries with 4KB pages")
	}
}
