// Package physical implements PC's physical planner (paper Appendix C/D):
// it breaks an optimized TCAP DAG into JobStages — PipelineJobStages that
// stream vector lists through fused stages, BuildHashTableJobStages that
// materialize join build sides, and AggregationJobStages that merge shuffled
// pre-aggregates — and orders them by artifact dependencies.
package physical

import (
	"fmt"
	"sort"

	"repro/internal/tcap"
)

// StageKind distinguishes streaming pipelines from aggregation merges.
type StageKind int

// Stage kinds (the paper's PipelineJobStage, BuildHashTableJobStage,
// AggregationJobStage; materialization is a pipeline with a set sink).
const (
	StagePipeline StageKind = iota
	StageAggregation
	// StageSortMerge is the root of a sort's merge network: it merges the
	// workers' sorted runs (shuffled through the exchange as SortRow
	// pages) into the final global order, applying the top-k limit and
	// any window running-aggregate.
	StageSortMerge
)

// SinkKind is a pipeline's terminal.
type SinkKind int

// Pipeline sinks.
const (
	SinkOutput      SinkKind = iota // write result objects to a stored set
	SinkPreAgg                      // pre-aggregate into partitioned maps
	SinkJoinBuild                   // build a join hash table
	SinkMaterialize                 // materialize an intermediate object set
	SinkSort                        // emit one sorted run per executor thread
)

// DefaultCheckpointInterval is the consumer-side recovery checkpoint
// interval the planner attaches to exchange-linked consuming stages:
// every this many shuffled pages, the consumer snapshots its merge state
// and acknowledges the cut, so a backend crash inside the merge replays
// at most one interval of the stream instead of failing the job. Each
// cut copies the consumer's whole merge state (sub-map page bytes), so
// the interval trades replay window against a per-cut cost proportional
// to aggregate state size — raise it (cluster Config.CheckpointInterval)
// for high-cardinality aggregations whose merged state is large.
const DefaultCheckpointInterval = 16

func (k SinkKind) String() string {
	switch k {
	case SinkOutput:
		return "output"
	case SinkPreAgg:
		return "pre-agg"
	case SinkJoinBuild:
		return "join-build"
	case SinkMaterialize:
		return "materialize"
	case SinkSort:
		return "sort-runs"
	default:
		return "?"
	}
}

// JobStage is one schedulable unit.
type JobStage struct {
	ID   int
	Kind StageKind

	// Pipeline fields.
	Scan       *tcap.Stmt   // source SCAN, nil when reading a materialization
	SourceList string       // materialized source vector list name (when Scan == nil)
	SourceCol  string       // column name objects are scanned into
	Stmts      []*tcap.Stmt // mid-pipeline statements in order
	Sink       SinkKind
	SinkStmt   *tcap.Stmt // OUTPUT / AGGREGATE / consuming JOIN / last stmt

	// Aggregation fields.
	AggList string // the AGGREGATE output list this stage merges

	// Exchange links: a producing stage and the consuming stage that
	// merges its shuffled output are marked as a pair so the scheduler
	// launches them together and connects them with a streaming exchange
	// (internal/exchange) instead of running them sequentially with a
	// barrier shuffle between. ExchangeTo points from the producer to its
	// consumer; ExchangeFrom points back (nil = not exchange-linked).
	ExchangeTo   *JobStage
	ExchangeFrom *JobStage

	// CheckpointEvery is the consuming stage's recovery checkpoint
	// interval: shuffled pages merged between consistent cuts of its
	// streaming merge. The planner sets it on exchange-linked consumers
	// (DefaultCheckpointInterval); zero means the stage consumes no
	// stream and carries no checkpoint policy.
	CheckpointEvery int

	Produces  string
	DependsOn []string
}

// Plan is an ordered set of job stages.
type Plan struct {
	Stages []*JobStage
}

// Build derives the physical plan from a validated TCAP program.
func Build(prog *tcap.Program) (*Plan, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	b := &builder{prog: prog, boundaries: map[string]bool{}}

	// A list is a materialization boundary when several statements
	// consume it, or when it is an aggregation's (finalized) output.
	for _, s := range prog.Stmts {
		if s.Op == tcap.OpAggregate || s.Op == tcap.OpDistinct ||
			s.Op == tcap.OpSort || s.Op == tcap.OpWindow {
			b.boundaries[s.Out.Name] = true
		}
		if s.Op != tcap.OpOutput && s.Op != tcap.OpScan {
			if len(prog.Consumers(s.Out.Name)) > 1 {
				b.boundaries[s.Out.Name] = true
			}
		}
	}

	// Pipelines rooted at SCANs (a stored set may be re-scanned by each
	// consumer) and at materialization boundaries.
	for _, s := range prog.Stmts {
		if s.Op == tcap.OpScan {
			for _, cons := range prog.Consumers(s.Out.Name) {
				if err := b.buildPipeline(s, s.Out.Name, s.Out.Cols[0], cons); err != nil {
					return nil, err
				}
			}
		}
	}
	boundaryNames := make([]string, 0, len(b.boundaries))
	for name := range b.boundaries {
		boundaryNames = append(boundaryNames, name)
	}
	sort.Strings(boundaryNames)
	for _, name := range boundaryNames {
		col, err := b.boundaryColumn(name)
		if err != nil {
			return nil, err
		}
		for _, cons := range prog.Consumers(name) {
			if err := b.buildPipeline(nil, name, col, cons); err != nil {
				return nil, err
			}
		}
	}

	p := &Plan{Stages: b.stages}
	return p, p.order()
}

type builder struct {
	prog       *tcap.Program
	boundaries map[string]bool
	stages     []*JobStage
	nextID     int
}

// boundaryColumn finds the single column downstream consumers reference in
// a materialized list (computation outputs are single-object-column lists).
func (b *builder) boundaryColumn(name string) (string, error) {
	cols := map[string]bool{}
	for _, cons := range b.prog.Consumers(name) {
		refs := [][]string{}
		if cons.Applied.Name == name {
			refs = append(refs, cons.Applied.Cols, cons.Copied.Cols)
		}
		if cons.Op == tcap.OpJoin && cons.Applied2.Name == name {
			refs = append(refs, cons.Applied2.Cols, cons.Copied2.Cols)
		}
		for _, rr := range refs {
			for _, c := range rr {
				cols[c] = true
			}
		}
	}
	if len(cols) != 1 {
		return "", fmt.Errorf("physical: materialized list %q referenced through %d columns; computation outputs must be single-column", name, len(cols))
	}
	for c := range cols {
		return c, nil
	}
	return "", fmt.Errorf("physical: materialized list %q has no consumers", name)
}

// buildPipeline follows the consumer chain from a source until a breaker.
func (b *builder) buildPipeline(scan *tcap.Stmt, srcList, srcCol string, first *tcap.Stmt) error {
	st := &JobStage{ID: b.nextID, Kind: StagePipeline, Scan: scan, SourceCol: srcCol}
	b.nextID++
	if scan == nil {
		st.SourceList = srcList
		st.DependsOn = append(st.DependsOn, "mat:"+srcList)
	}

	cur := first
	curList := srcList
	for {
		switch {
		case cur.Op == tcap.OpOutput:
			st.Sink = SinkOutput
			st.SinkStmt = cur
			st.Produces = "set:" + cur.Db + "." + cur.Set
			b.stages = append(b.stages, st)
			return nil

		case cur.Op == tcap.OpSort || cur.Op == tcap.OpWindow:
			// This pipeline produces per-thread sorted runs; the
			// exchange-linked SortMerge stage merges them globally.
			st.Sink = SinkSort
			st.SinkStmt = cur
			st.Produces = "sortruns:" + cur.Out.Name
			b.stages = append(b.stages, st)
			merge := &JobStage{
				ID:              b.nextID,
				Kind:            StageSortMerge,
				AggList:         cur.Out.Name,
				SinkStmt:        cur,
				Produces:        "mat:" + cur.Out.Name,
				DependsOn:       []string{"sortruns:" + cur.Out.Name},
				CheckpointEvery: DefaultCheckpointInterval,
			}
			st.ExchangeTo = merge
			merge.ExchangeFrom = st
			b.nextID++
			b.stages = append(b.stages, merge)
			return nil

		case cur.Op == tcap.OpAggregate || cur.Op == tcap.OpDistinct:
			st.Sink = SinkPreAgg
			st.SinkStmt = cur
			st.Produces = "aggmaps:" + cur.Out.Name
			b.stages = append(b.stages, st)
			// The consuming AggregationJobStage merges the shuffled
			// maps and finalizes output objects. The pair is
			// exchange-linked: the scheduler runs both together, with
			// the pre-aggregation shuffle streaming between them.
			agg := &JobStage{
				ID:              b.nextID,
				Kind:            StageAggregation,
				AggList:         cur.Out.Name,
				SinkStmt:        cur,
				Produces:        "mat:" + cur.Out.Name,
				DependsOn:       []string{"aggmaps:" + cur.Out.Name},
				CheckpointEvery: DefaultCheckpointInterval,
			}
			st.ExchangeTo = agg
			agg.ExchangeFrom = st
			b.nextID++
			b.stages = append(b.stages, agg)
			return nil

		case cur.Op == tcap.OpJoin && cur.Applied2.Name == curList:
			// This pipeline feeds the join's build side.
			st.Sink = SinkJoinBuild
			st.SinkStmt = cur
			st.Produces = "table:" + curList
			b.stages = append(b.stages, st)
			return nil

		default:
			// Mid-pipeline statement (APPLY/HASH/FILTER/FLATTEN or
			// JOIN probe).
			if cur.Op == tcap.OpJoin {
				st.DependsOn = append(st.DependsOn, "table:"+cur.Applied2.Name)
			}
			st.Stmts = append(st.Stmts, cur)
			curList = cur.Out.Name
			if b.boundaries[curList] {
				st.Sink = SinkMaterialize
				st.SinkStmt = cur
				st.Produces = "mat:" + curList
				b.stages = append(b.stages, st)
				return nil
			}
			consumers := b.prog.Consumers(curList)
			switch len(consumers) {
			case 0:
				// Dangling non-boundary output: materialize it.
				st.Sink = SinkMaterialize
				st.SinkStmt = cur
				st.Produces = "mat:" + curList
				b.stages = append(b.stages, st)
				return nil
			case 1:
				cur = consumers[0]
			default:
				return fmt.Errorf("physical: list %q has %d consumers but is not a boundary", curList, len(consumers))
			}
		}
	}
}

// order topologically sorts stages by artifact dependencies (stable by ID
// among ready stages).
func (p *Plan) order() error {
	produced := map[string]*JobStage{}
	for _, s := range p.Stages {
		if s.Produces != "" {
			produced[s.Produces] = s
		}
	}
	state := map[*JobStage]int{}
	var out []*JobStage
	var visit func(s *JobStage) error
	visit = func(s *JobStage) error {
		switch state[s] {
		case 1:
			return fmt.Errorf("physical: cyclic stage dependencies at %q", s.Produces)
		case 2:
			return nil
		}
		state[s] = 1
		deps := append([]string(nil), s.DependsOn...)
		sort.Strings(deps)
		for _, d := range deps {
			if dep, ok := produced[d]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			} else {
				return fmt.Errorf("physical: stage %d depends on unproduced artifact %q", s.ID, d)
			}
		}
		state[s] = 2
		out = append(out, s)
		return nil
	}
	ordered := append([]*JobStage(nil), p.Stages...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
	for _, s := range ordered {
		if err := visit(s); err != nil {
			return err
		}
	}
	p.Stages = out
	return nil
}

// String renders the plan for diagnostics and the Figure 3 tooling.
func (p *Plan) String() string {
	out := ""
	for _, s := range p.Stages {
		switch s.Kind {
		case StageAggregation:
			link := ""
			if s.ExchangeFrom != nil {
				link = fmt.Sprintf(" <~ stage %d (exchange)", s.ExchangeFrom.ID)
			}
			out += fmt.Sprintf("stage %d: AGGREGATION %s -> %s%s\n", s.ID, s.AggList, s.Produces, link)
		case StageSortMerge:
			link := ""
			if s.ExchangeFrom != nil {
				link = fmt.Sprintf(" <~ stage %d (exchange)", s.ExchangeFrom.ID)
			}
			out += fmt.Sprintf("stage %d: SORTMERGE %s -> %s%s\n", s.ID, s.AggList, s.Produces, link)
		default:
			src := s.SourceList
			if s.Scan != nil {
				src = "scan " + s.Scan.Db + "." + s.Scan.Set
			}
			link := ""
			if s.ExchangeTo != nil {
				link = fmt.Sprintf(" ~> stage %d (exchange)", s.ExchangeTo.ID)
			}
			out += fmt.Sprintf("stage %d: PIPELINE [%s] %d stmts sink=%s -> %s%s\n",
				s.ID, src, len(s.Stmts), s.Sink, s.Produces, link)
		}
	}
	return out
}
