package physical

import (
	"strings"
	"testing"

	"repro/internal/tcap"
)

// figure3Program transcribes the paper's Figure 3 DAG: three joins feeding
// an aggregation. Inputs 1 and 2 join, input 3 joins the result, input 4
// joins that, and the aggregate consumes the final join (statement numbers
// match the figure's node labels loosely).
const figure3Program = `
S1(a) <= SCAN('db', 'in1', 'C1', []);
S2(b) <= SCAN('db', 'in2', 'C2', []);
S3(c) <= SCAN('db', 'in3', 'C3', []);
S4(d) <= SCAN('db', 'in4', 'C4', []);
H1(a,h1) <= HASH(S1(a), S1(a), 'J1', 'h1', []);
H2(b,h2) <= HASH(S2(b), S2(b), 'J1', 'h2', []);
J1(a,b) <= JOIN(H1(h1), H1(a), H2(h2), H2(b), 'J1', []);
H3(a,b,h3) <= HASH(J1(a), J1(a,b), 'J2', 'h3', []);
H4(c,h4) <= HASH(S3(c), S3(c), 'J2', 'h4', []);
J2(a,b,c) <= JOIN(H3(h3), H3(a,b), H4(h4), H4(c), 'J2', []);
H5(a,b,c,h5) <= HASH(J2(a), J2(a,b,c), 'J3', 'h5', []);
H6(d,h6) <= HASH(S4(d), S4(d), 'J3', 'h6', []);
J3(a,b,c,d) <= JOIN(H5(h5), H5(a,b,c), H6(h6), H6(d), 'J3', []);
K(a,kv) <= APPLY(J3(a), J3(a), 'Agg', 'key', []);
V(a,kv,vv) <= APPLY(K(a), K(a,kv), 'Agg', 'val', []);
A(res) <= AGGREGATE(V(kv,vv), V(), 'Agg', 'agg', []);
O() <= OUTPUT(A(res), 'db', 'result', 'Out', []);
`

func TestFigure3Pipelining(t *testing.T) {
	prog, err := tcap.Parse(figure3Program)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	var builds, preAgg, aggStages, outputs int
	for _, s := range plan.Stages {
		switch {
		case s.Kind == StageAggregation:
			aggStages++
		case s.Sink == SinkJoinBuild:
			builds++
		case s.Sink == SinkPreAgg:
			preAgg++
		case s.Sink == SinkOutput:
			outputs++
		}
	}
	// Figure 3's decomposition: the three join build sides each become
	// their own pipeline; the probe side runs S1 through all three joins
	// into the aggregation; plus the aggregation merge and the final
	// output pipeline reading the finalized aggregate.
	if builds != 3 {
		t.Errorf("join-build pipelines = %d, want 3\n%s", builds, plan.String())
	}
	if preAgg != 1 {
		t.Errorf("pre-agg pipelines = %d, want 1\n%s", preAgg, plan.String())
	}
	if aggStages != 1 {
		t.Errorf("aggregation stages = %d, want 1\n%s", aggStages, plan.String())
	}
	if outputs != 1 {
		t.Errorf("output pipelines = %d, want 1\n%s", outputs, plan.String())
	}
}

func TestFigure3StageOrdering(t *testing.T) {
	prog, err := tcap.Parse(figure3Program)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Artifacts must be produced before consumed in the final order.
	produced := map[string]bool{}
	for _, s := range plan.Stages {
		for _, d := range s.DependsOn {
			if !produced[d] {
				t.Errorf("stage %d consumes %q before production\n%s", s.ID, d, plan.String())
			}
		}
		produced[s.Produces] = true
	}
}

func TestProbePipelineContainsAllThreeJoins(t *testing.T) {
	prog, err := tcap.Parse(figure3Program)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range plan.Stages {
		if s.Sink == SinkPreAgg {
			joins := 0
			for _, st := range s.Stmts {
				if st.Op == tcap.OpJoin {
					joins++
				}
			}
			if joins != 3 {
				t.Errorf("probe pipeline has %d joins, want 3 (joins pipeline through probes)", joins)
			}
			return
		}
	}
	t.Fatal("no pre-agg pipeline found")
}

func TestMultiConsumerForcesMaterialization(t *testing.T) {
	src := `
S(a) <= SCAN('db', 'in', 'C', []);
X(a,b) <= APPLY(S(a), S(a), 'C', 's1', []);
Y1(a,b,c) <= APPLY(X(b), X(a,b), 'C', 's2', []);
Y2(a,b,d) <= APPLY(X(b), X(a,b), 'C', 's3', []);
O1() <= OUTPUT(Y1(c), 'db', 'o1', 'C', []);
O2() <= OUTPUT(Y2(d), 'db', 'o2', 'C', []);
`
	prog, err := tcap.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// X's consumers reference columns a and b — more than one column, so
	// boundary materialization must reject it (computation outputs are
	// single-column).
	if _, err := Build(prog); err == nil || !strings.Contains(err.Error(), "single-column") {
		t.Errorf("expected single-column boundary error, got %v", err)
	}

	// With consumers referencing only one column it plans fine.
	src2 := `
S(a) <= SCAN('db', 'in', 'C', []);
X(b) <= APPLY(S(a), S(), 'C', 's1', []);
Y1(b,c) <= APPLY(X(b), X(b), 'C', 's2', []);
Y2(b,d) <= APPLY(X(b), X(b), 'C', 's3', []);
O1() <= OUTPUT(Y1(c), 'db', 'o1', 'C', []);
O2() <= OUTPUT(Y2(d), 'db', 'o2', 'C', []);
`
	prog2, err := tcap.Parse(src2)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(prog2)
	if err != nil {
		t.Fatal(err)
	}
	var mats int
	for _, s := range plan.Stages {
		if s.Sink == SinkMaterialize {
			mats++
		}
	}
	if mats != 1 {
		t.Errorf("materializations = %d, want 1\n%s", mats, plan.String())
	}
}

func TestRescanForMultipleScanConsumers(t *testing.T) {
	// Two computations scanning the same set produce two pipelines each
	// re-scanning the stored set (no materialization needed).
	src := `
S(a) <= SCAN('db', 'in', 'C', []);
Y1(a,c) <= APPLY(S(a), S(a), 'C', 's2', []);
Y2(a,d) <= APPLY(S(a), S(a), 'C', 's3', []);
O1() <= OUTPUT(Y1(c), 'db', 'o1', 'C', []);
O2() <= OUTPUT(Y2(d), 'db', 'o2', 'C', []);
`
	prog, err := tcap.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	var scans int
	for _, s := range plan.Stages {
		if s.Scan != nil {
			scans++
		}
	}
	if scans != 2 {
		t.Errorf("scan-rooted pipelines = %d, want 2\n%s", scans, plan.String())
	}
}

func TestPlanStringIsInformative(t *testing.T) {
	prog, _ := tcap.Parse(figure3Program)
	plan, err := Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	out := plan.String()
	for _, want := range []string{"PIPELINE", "AGGREGATION", "join-build", "output"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan string missing %q:\n%s", want, out)
		}
	}
}

func TestAggregationStagesAreExchangeLinked(t *testing.T) {
	prog, err := tcap.Parse(figure3Program)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	links := 0
	for _, s := range plan.Stages {
		switch {
		case s.Sink == SinkPreAgg && s.Kind == StagePipeline:
			if s.ExchangeTo == nil || s.ExchangeTo.Kind != StageAggregation ||
				s.ExchangeTo.AggList != s.SinkStmt.Out.Name {
				t.Errorf("pre-agg stage %d is not exchange-linked to its consumer\n%s", s.ID, plan.String())
			}
			if s.ExchangeTo.ExchangeFrom != s {
				t.Errorf("stage %d's consumer does not link back\n%s", s.ID, plan.String())
			}
			links++
		case s.ExchangeTo != nil || (s.Kind != StageAggregation && s.ExchangeFrom != nil):
			t.Errorf("stage %d unexpectedly exchange-linked\n%s", s.ID, plan.String())
		}
	}
	if links != 1 {
		t.Fatalf("exchange links = %d, want 1\n%s", links, plan.String())
	}
}
