// Package wire defines PC's network frame format — the process boundary's
// byte-level contract (paper §2/Appendix D: master and worker front-end/
// backend run as separate OS processes connected by sockets).
//
// The format exists because of what it does NOT do: a sealed page is
// already its own wire representation (the zero-serialization object
// model), so a page frame is a fixed header, the page's exchange tag, a
// type-code table binding the codes embedded in the page's object headers
// to type names, and then the page's occupied bytes written exactly as they
// sit in memory. Encode followed by decode hands back a byte-identical
// payload; there is no marshal step for page contents on either side.
//
// Frame layout (all integers big-endian):
//
//	offset  size  field
//	0       3     magic "PCW"
//	3       1     version (1)
//	4       1     kind (KindPage | KindControl)
//	5       4     producer  (exchange tag; zero for non-exchange traffic)
//	9       4     thread
//	13      4     seq
//	17      4     type-table entry count N
//	21      ...   N × { code u32, nameLen u16, name bytes }
//	...     4     payload length L
//	...     L     payload (page bytes verbatim, or a control message)
//
// Control frames reuse the same envelope with KindControl and a JSON
// payload — the master↔worker control protocol (internal/procwork) rides
// them, so one codec, one length-prefix discipline, and one set of
// truncation/corruption errors covers every byte that crosses the boundary.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the frame format version this package speaks.
const Version = 1

// Frame kinds.
const (
	// KindPage carries a sealed page's bytes plus its exchange tag and
	// type-code table.
	KindPage = 1
	// KindControl carries a control-protocol message (JSON payload).
	KindControl = 2
)

// magic is the 3-byte frame preamble; the fourth header byte is the
// version, so "bad magic" and "unsupported version" stay distinct errors.
var magic = [3]byte{'P', 'C', 'W'}

// Limits a decoder enforces before allocating (DoS hygiene: a corrupt or
// hostile length prefix must produce an error, not an OOM).
const (
	// MaxTypeTable bounds the type-table entry count.
	MaxTypeTable = 1 << 12
	// maxTypeName bounds one type name's length.
	maxTypeName = 1 << 10
	// DefaultMaxPayload bounds the payload length when the reader passes
	// no explicit limit (1 GiB — far above any page size in use).
	DefaultMaxPayload = 1 << 30
)

// Decode errors. Truncated input surfaces as io.ErrUnexpectedEOF (wrapped);
// structural problems surface as one of these (wrapped with detail).
var (
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrBadKind    = errors.New("wire: unknown frame kind")
	ErrTooLarge   = errors.New("wire: frame exceeds size limit")
)

// TypeBinding is one type-table entry: the code embedded in the page's
// object headers, and the registered type name it must resolve to on the
// receiving side.
type TypeBinding struct {
	Code uint32
	Name string
}

// Tag is a page's exchange position (mirrors exchange.Tag without the
// import: wire sits below the exchange).
type Tag struct {
	Producer, Thread, Seq uint32
}

// Frame is one decoded wire frame.
type Frame struct {
	Kind  byte
	Tag   Tag
	Types []TypeBinding
	// Payload is the page's occupied bytes (KindPage) or the control
	// message (KindControl), exactly as transmitted.
	Payload []byte
}

// Append serializes the frame onto buf and returns the extended slice. The
// payload is copied verbatim — page bytes are never re-encoded.
func Append(buf []byte, f *Frame) ([]byte, error) {
	if f.Kind != KindPage && f.Kind != KindControl {
		return nil, fmt.Errorf("%w: %d", ErrBadKind, f.Kind)
	}
	if len(f.Types) > MaxTypeTable {
		return nil, fmt.Errorf("%w: %d type bindings", ErrTooLarge, len(f.Types))
	}
	buf = append(buf, magic[0], magic[1], magic[2], Version, f.Kind)
	buf = binary.BigEndian.AppendUint32(buf, f.Tag.Producer)
	buf = binary.BigEndian.AppendUint32(buf, f.Tag.Thread)
	buf = binary.BigEndian.AppendUint32(buf, f.Tag.Seq)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(f.Types)))
	for _, tb := range f.Types {
		if len(tb.Name) > maxTypeName {
			return nil, fmt.Errorf("%w: type name %d bytes", ErrTooLarge, len(tb.Name))
		}
		buf = binary.BigEndian.AppendUint32(buf, tb.Code)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(tb.Name)))
		buf = append(buf, tb.Name...)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(f.Payload)))
	buf = append(buf, f.Payload...)
	return buf, nil
}

// Write encodes f and writes it to w as one frame.
func Write(w io.Writer, f *Frame) error {
	buf, err := Append(nil, f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Read decodes one frame from r. maxPayload bounds the payload length a
// length prefix may claim (<= 0 uses DefaultMaxPayload). Truncated input
// returns an error wrapping io.ErrUnexpectedEOF; a clean EOF before any
// header byte returns io.EOF untouched, so stream loops can end naturally.
// Read never panics on corrupt input.
func Read(r io.Reader, maxPayload int) (*Frame, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	var hdr [21]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: reading header: %w", err)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return nil, fmt.Errorf("wire: reading header: %w", unexpected(err))
	}
	if hdr[0] != magic[0] || hdr[1] != magic[1] || hdr[2] != magic[2] {
		return nil, fmt.Errorf("%w: % x", ErrBadMagic, hdr[:3])
	}
	if hdr[3] != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, hdr[3])
	}
	f := &Frame{Kind: hdr[4]}
	if f.Kind != KindPage && f.Kind != KindControl {
		return nil, fmt.Errorf("%w: %d", ErrBadKind, f.Kind)
	}
	f.Tag.Producer = binary.BigEndian.Uint32(hdr[5:])
	f.Tag.Thread = binary.BigEndian.Uint32(hdr[9:])
	f.Tag.Seq = binary.BigEndian.Uint32(hdr[13:])
	nTypes := binary.BigEndian.Uint32(hdr[17:])
	if nTypes > MaxTypeTable {
		return nil, fmt.Errorf("%w: %d type bindings", ErrTooLarge, nTypes)
	}
	if nTypes > 0 {
		f.Types = make([]TypeBinding, 0, nTypes)
	}
	var ent [6]byte
	for i := uint32(0); i < nTypes; i++ {
		if _, err := io.ReadFull(r, ent[:]); err != nil {
			return nil, fmt.Errorf("wire: reading type table: %w", unexpected(err))
		}
		code := binary.BigEndian.Uint32(ent[:])
		nameLen := binary.BigEndian.Uint16(ent[4:])
		if int(nameLen) > maxTypeName {
			return nil, fmt.Errorf("%w: type name %d bytes", ErrTooLarge, nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, fmt.Errorf("wire: reading type table: %w", unexpected(err))
		}
		f.Types = append(f.Types, TypeBinding{Code: code, Name: string(name)})
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("wire: reading payload length: %w", unexpected(err))
	}
	payLen := binary.BigEndian.Uint32(lenBuf[:])
	if int64(payLen) > int64(maxPayload) {
		return nil, fmt.Errorf("%w: payload %d > limit %d", ErrTooLarge, payLen, maxPayload)
	}
	f.Payload = make([]byte, payLen)
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return nil, fmt.Errorf("wire: reading payload: %w", unexpected(err))
	}
	return f, nil
}

// unexpected normalizes a short read: io.EOF mid-frame is a truncation.
func unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
