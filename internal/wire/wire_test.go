package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func sampleFrame() *Frame {
	return &Frame{
		Kind: KindPage,
		Tag:  Tag{Producer: 2, Thread: 1, Seq: 7},
		Types: []TypeBinding{
			{Code: 64, Name: "Employee"},
			{Code: 65, Name: "DeptTotal"},
		},
		Payload: []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01},
	}
}

// goldenSample is the byte-exact encoding of sampleFrame. If this test
// breaks, the wire format changed: bump Version, don't edit the golden.
var goldenSample = []byte{
	'P', 'C', 'W', // magic
	1,          // version
	KindPage,   // kind
	0, 0, 0, 2, // producer
	0, 0, 0, 1, // thread
	0, 0, 0, 7, // seq
	0, 0, 0, 2, // type-table count
	0, 0, 0, 64, 0, 8, 'E', 'm', 'p', 'l', 'o', 'y', 'e', 'e',
	0, 0, 0, 65, 0, 9, 'D', 'e', 'p', 't', 'T', 'o', 't', 'a', 'l',
	0, 0, 0, 6, // payload length
	0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01,
}

func TestGoldenBytes(t *testing.T) {
	got, err := Append(nil, sampleFrame())
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if !bytes.Equal(got, goldenSample) {
		t.Fatalf("encoding drifted from golden bytes\n got: % x\nwant: % x", got, goldenSample)
	}
}

func TestRoundTrip(t *testing.T) {
	f := sampleFrame()
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf, 0)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Kind != f.Kind || got.Tag != f.Tag {
		t.Fatalf("header mismatch: got %+v want %+v", got, f)
	}
	if len(got.Types) != len(f.Types) {
		t.Fatalf("type table: got %d entries want %d", len(got.Types), len(f.Types))
	}
	for i := range f.Types {
		if got.Types[i] != f.Types[i] {
			t.Fatalf("type[%d]: got %+v want %+v", i, got.Types[i], f.Types[i])
		}
	}
	// The payload must come back byte-identical — pages are never
	// reserialized across the boundary.
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("payload not byte-identical:\n got % x\nwant % x", got.Payload, f.Payload)
	}
	if buf.Len() != 0 {
		t.Fatalf("Read left %d trailing bytes", buf.Len())
	}
}

func TestRoundTripEmpty(t *testing.T) {
	f := &Frame{Kind: KindControl, Payload: nil}
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf, 0)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Kind != KindControl || len(got.Types) != 0 || len(got.Payload) != 0 {
		t.Fatalf("empty control frame round-trip: %+v", got)
	}
}

func TestCleanEOF(t *testing.T) {
	_, err := Read(bytes.NewReader(nil), 0)
	if err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
}

func TestTruncated(t *testing.T) {
	full := goldenSample
	// Every strict prefix must fail cleanly (io.EOF for length 0,
	// io.ErrUnexpectedEOF otherwise), never panic.
	for n := 0; n < len(full); n++ {
		_, err := Read(bytes.NewReader(full[:n]), 0)
		if err == nil {
			t.Fatalf("prefix of %d bytes decoded without error", n)
		}
		if n == 0 {
			if err != io.EOF {
				t.Fatalf("prefix 0: got %v, want io.EOF", err)
			}
			continue
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("prefix of %d bytes: got %v, want ErrUnexpectedEOF", n, err)
		}
	}
}

func TestCorrupt(t *testing.T) {
	mutate := func(off int, b byte) []byte {
		c := append([]byte(nil), goldenSample...)
		c[off] = b
		return c
	}
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"bad magic", mutate(0, 'X'), ErrBadMagic},
		{"bad version", mutate(3, 99), ErrBadVersion},
		{"bad kind", mutate(4, 0), ErrBadKind},
		{"huge type table", mutate(17, 0xFF), ErrTooLarge},
		{"payload over limit", goldenSample, ErrTooLarge}, // with limit 1 below
	}
	for _, tc := range cases {
		limit := 0
		if tc.name == "payload over limit" {
			limit = 1
		}
		_, err := Read(bytes.NewReader(tc.in), limit)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestEncodeRejects(t *testing.T) {
	if _, err := Append(nil, &Frame{Kind: 9}); !errors.Is(err, ErrBadKind) {
		t.Fatalf("bad kind: got %v", err)
	}
	big := &Frame{Kind: KindPage, Types: make([]TypeBinding, MaxTypeTable+1)}
	if _, err := Append(nil, big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized type table: got %v", err)
	}
}

func FuzzRead(f *testing.F) {
	f.Add(goldenSample)
	f.Add([]byte{})
	f.Add([]byte{'P', 'C', 'W', 1, KindControl})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; on success the re-encoding must round-trip.
		fr, err := Read(bytes.NewReader(data), 1<<20)
		if err != nil {
			return
		}
		enc, err := Append(nil, fr)
		if err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		fr2, err := Read(bytes.NewReader(enc), 1<<20)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if fr2.Kind != fr.Kind || fr2.Tag != fr.Tag || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", fr, fr2)
		}
	})
}
