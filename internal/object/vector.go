package object

import (
	"encoding/binary"
	"fmt"
)

// Vector is PC's generic growable array container, stored entirely in-page:
// a fixed header (length, capacity, element kind, handle to the backing
// array object). Element storage is a separate TCArray object on the same
// page, so growth allocates a new array and releases the old one.
//
// Vector element kinds: scalars are stored inline; KHandle/KString elements
// are 8-byte handle slots inside the array, so nested object graphs stay
// page-local and shippable.
type Vector struct{ Ref }

const (
	vecLenOff  = 0
	vecCapOff  = 4
	vecKindOff = 8
	vecDataOff = 12
	vecHdrSize = vecDataOff + HandleSize
)

// MakeVector allocates an empty vector with the given element kind and
// initial capacity on the active block.
func MakeVector(a *Allocator, elem Kind, initCap int) (Vector, error) {
	if elem.Size() == 0 {
		return Vector{}, fmt.Errorf("object: vector of invalid kind %v", elem)
	}
	if initCap < 0 {
		initCap = 0
	}
	off, err := a.Alloc(vecHdrSize, TCVector, FullRefCount)
	if err != nil {
		return Vector{}, err
	}
	v := Vector{Ref{Page: a.Page, Off: off}}
	d := v.Page.Data
	binary.LittleEndian.PutUint32(d[off+vecCapOff:], uint32(initCap))
	binary.LittleEndian.PutUint32(d[off+vecKindOff:], uint32(elem))
	if initCap > 0 {
		arr, err := a.Alloc(uint32(initCap)*elem.Size(), TCArray, FullRefCount)
		if err != nil {
			return Vector{}, err
		}
		if err := WriteHandleSlot(a, v.Page, off+vecDataOff, Ref{Page: a.Page, Off: arr}); err != nil {
			return Vector{}, err
		}
	}
	return v, nil
}

// AsVector views a Ref known to be a vector.
func AsVector(r Ref) Vector { return Vector{r} }

// Len returns the element count.
func (v Vector) Len() int {
	return int(binary.LittleEndian.Uint32(v.Page.Data[v.Off+vecLenOff:]))
}

// Cap returns the current capacity.
func (v Vector) Cap() int {
	return int(binary.LittleEndian.Uint32(v.Page.Data[v.Off+vecCapOff:]))
}

// ElemKind returns the element storage kind.
func (v Vector) ElemKind() Kind {
	return Kind(binary.LittleEndian.Uint32(v.Page.Data[v.Off+vecKindOff:]))
}

func (v Vector) setLen(n int) {
	binary.LittleEndian.PutUint32(v.Page.Data[v.Off+vecLenOff:], uint32(n))
}

func (v Vector) setCap(n int) {
	binary.LittleEndian.PutUint32(v.Page.Data[v.Off+vecCapOff:], uint32(n))
}

func (v Vector) dataRef() Ref { return ReadHandleSlot(v.Page, v.Off+vecDataOff) }

// elemOff returns the absolute page offset of element i.
func (v Vector) elemOff(i int) uint32 {
	return v.dataRef().Off + uint32(i)*v.ElemKind().Size()
}

// grow ensures capacity for at least need elements, reallocating the backing
// array (and rewriting relative handle offsets, which move with the slots).
func (v Vector) grow(a *Allocator, need int) error {
	cap := v.Cap()
	if need <= cap {
		return nil
	}
	newCap := cap * 2
	if newCap < 8 {
		newCap = 8
	}
	for newCap < need {
		newCap *= 2
	}
	kind := v.ElemKind()
	es := kind.Size()
	arrOff, err := a.Alloc(uint32(newCap)*es, TCArray, FullRefCount)
	if err != nil {
		return err
	}
	old := v.dataRef()
	n := v.Len()
	d := v.Page.Data
	if !old.IsNil() && n > 0 {
		if kind.IsHandleKind() {
			// Re-anchor every handle slot at its new location; the
			// targets do not move, only the slots do, so reference
			// counts are untouched.
			for i := 0; i < n; i++ {
				oldSlot := old.Off + uint32(i)*es
				newSlot := arrOff + uint32(i)*es
				rewriteHandleSlotRaw(v.Page, newSlot, ReadHandleSlot(v.Page, oldSlot))
			}
		} else {
			copy(d[arrOff:arrOff+uint32(n)*es], d[old.Off:old.Off+uint32(n)*es])
		}
	}
	// Point the vector at the new array without triggering the element
	// destructor path: raw-release the old array only.
	newArr := Ref{Page: v.Page, Off: arrOff}
	rewriteHandleSlotRaw(v.Page, v.Off+vecDataOff, newArr)
	newArr.Retain()
	if !old.IsNil() {
		// The old array holds stale handle slot copies; free it as raw
		// space without releasing children (they were moved, not
		// dropped). Clear its slots first so Release has no children
		// to traverse — arrays never traverse children anyway.
		old.Release()
	}
	v.setCap(newCap)
	return nil
}

// PushBack appends a Value of the vector's element kind. Handle values on a
// foreign page are deep-copied by the slot-write rule.
func (v Vector) PushBack(a *Allocator, val Value) error {
	n := v.Len()
	if err := v.grow(a, n+1); err != nil {
		return err
	}
	v.setLen(n + 1)
	if err := v.Set(a, n, val); err != nil {
		// Roll back the length: a handle or string element can fault
		// mid-write (the deep copy of a cross-page target can fill the
		// page), and the caller's rotate-and-retry must not leave a
		// phantom nil element behind on the page being sealed.
		v.setLen(n)
		return err
	}
	return nil
}

// PushBackF64 is the float64 fast path.
func (v Vector) PushBackF64(a *Allocator, f float64) error {
	n := v.Len()
	if err := v.grow(a, n+1); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(v.Page.Data[v.elemOff(n):], float64bits(f))
	v.setLen(n + 1)
	return nil
}

// PushBackI64 is the int64 fast path.
func (v Vector) PushBackI64(a *Allocator, x int64) error {
	n := v.Len()
	if err := v.grow(a, n+1); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(v.Page.Data[v.elemOff(n):], uint64(x))
	v.setLen(n + 1)
	return nil
}

// PushBackHandle appends a handle element.
func (v Vector) PushBackHandle(a *Allocator, target Ref) error {
	return v.PushBack(a, HandleValue(target))
}

// Set writes element i from a Value.
func (v Vector) Set(a *Allocator, i int, val Value) error {
	if i < 0 || i >= v.Len() {
		return fmt.Errorf("object: vector index %d out of range [0,%d)", i, v.Len())
	}
	off := v.elemOff(i)
	d := v.Page.Data
	switch v.ElemKind() {
	case KBool:
		if val.B {
			d[off] = 1
		} else {
			d[off] = 0
		}
	case KInt32:
		binary.LittleEndian.PutUint32(d[off:], uint32(val.AsInt64()))
	case KInt64:
		binary.LittleEndian.PutUint64(d[off:], uint64(val.AsInt64()))
	case KFloat64:
		binary.LittleEndian.PutUint64(d[off:], float64bits(val.AsFloat64()))
	case KString:
		if val.K == KString {
			sr, err := MakeString(a, val.S)
			if err != nil {
				return err
			}
			return WriteHandleSlot(a, v.Page, off, sr)
		}
		return WriteHandleSlot(a, v.Page, off, val.H)
	case KHandle:
		return WriteHandleSlot(a, v.Page, off, val.H)
	default:
		return fmt.Errorf("object: vector of invalid kind")
	}
	v.Page.Dirty = true
	return nil
}

// At reads element i as a Value.
func (v Vector) At(i int) Value {
	off := v.elemOff(i)
	d := v.Page.Data
	switch v.ElemKind() {
	case KBool:
		return BoolValue(d[off] != 0)
	case KInt32:
		return Int32Value(int32(binary.LittleEndian.Uint32(d[off:])))
	case KInt64:
		return Int64Value(int64(binary.LittleEndian.Uint64(d[off:])))
	case KFloat64:
		return Float64Value(float64frombits(binary.LittleEndian.Uint64(d[off:])))
	case KString:
		return StringValue(StringContents(ReadHandleSlot(v.Page, off)))
	case KHandle:
		return HandleValue(ReadHandleSlot(v.Page, off))
	default:
		return Value{}
	}
}

// F64At is the float64 fast path.
func (v Vector) F64At(i int) float64 {
	return float64frombits(binary.LittleEndian.Uint64(v.Page.Data[v.elemOff(i):]))
}

// I64At is the int64 fast path.
func (v Vector) I64At(i int) int64 {
	return int64(binary.LittleEndian.Uint64(v.Page.Data[v.elemOff(i):]))
}

// HandleAt resolves handle element i.
func (v Vector) HandleAt(i int) Ref { return ReadHandleSlot(v.Page, v.elemOff(i)) }

// SetF64 writes float64 element i without bounds allocation overhead.
func (v Vector) SetF64(i int, f float64) {
	binary.LittleEndian.PutUint64(v.Page.Data[v.elemOff(i):], float64bits(f))
	v.Page.Dirty = true
}

// F64Span is a resolved view over a float64 vector's storage: the handle
// indirection is paid once, then element access is a direct byte-offset
// read/write — the Go analogue of Eigen mapping the raw block through
// getRawDataHandle()->c_ptr() (paper §8.3.1). The span is invalidated by
// any operation that grows the vector.
type F64Span struct {
	d    []byte
	base uint32
	n    int
}

// F64Span resolves the vector's storage for hot loops.
func (v Vector) F64Span() F64Span {
	n := v.Len()
	if n == 0 {
		return F64Span{}
	}
	return F64Span{d: v.Page.Data, base: v.elemOff(0), n: n}
}

// Len returns the element count.
func (s F64Span) Len() int { return s.n }

// At reads element i.
func (s F64Span) At(i int) float64 {
	return float64frombits(binary.LittleEndian.Uint64(s.d[s.base+uint32(i)*8:]))
}

// Set writes element i.
func (s F64Span) Set(i int, x float64) {
	binary.LittleEndian.PutUint64(s.d[s.base+uint32(i)*8:], float64bits(x))
}

// Add increments element i by delta.
func (s F64Span) Add(i int, delta float64) {
	off := s.base + uint32(i)*8
	cur := float64frombits(binary.LittleEndian.Uint64(s.d[off:]))
	binary.LittleEndian.PutUint64(s.d[off:], float64bits(cur+delta))
}

// CopyTo copies the span into dst (len(dst) must be >= s.Len()).
func (s F64Span) CopyTo(dst []float64) {
	for i := 0; i < s.n; i++ {
		dst[i] = s.At(i)
	}
}

// Float64Slice copies the vector's contents into a Go slice (bridging into
// numeric kernels, the analogue of Eigen mapping the raw block).
func (v Vector) Float64Slice() []float64 {
	n := v.Len()
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	base := v.elemOff(0)
	d := v.Page.Data
	for i := 0; i < n; i++ {
		out[i] = float64frombits(binary.LittleEndian.Uint64(d[base+uint32(i)*8:]))
	}
	return out
}

// AppendFloat64s bulk-appends a Go slice into a float64 vector.
func (v Vector) AppendFloat64s(a *Allocator, xs []float64) error {
	n := v.Len()
	if err := v.grow(a, n+len(xs)); err != nil {
		return err
	}
	d := v.Page.Data
	base := v.dataRef().Off + uint32(n)*8
	for i, x := range xs {
		binary.LittleEndian.PutUint64(d[base+uint32(i)*8:], float64bits(x))
	}
	v.setLen(n + len(xs))
	v.Page.Dirty = true
	return nil
}
