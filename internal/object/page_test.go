package object

import (
	"testing"
)

func newTestPage(t testing.TB, size int) (*Page, *Allocator) {
	t.Helper()
	reg := NewRegistry()
	p := NewPage(size, reg)
	return p, NewAllocator(p, PolicyLightweightReuse)
}

func TestNewPageHeader(t *testing.T) {
	p := NewPage(4096, NewRegistry())
	if got := p.Used(); got != PageHeaderSize {
		t.Errorf("Used() = %d, want %d", got, PageHeaderSize)
	}
	if p.ActiveObjects() != 0 {
		t.Errorf("ActiveObjects() = %d, want 0", p.ActiveObjects())
	}
	if !p.Managed() {
		t.Error("new page should be managed")
	}
	if p.Root() != 0 {
		t.Errorf("Root() = %d, want 0", p.Root())
	}
}

func TestPageRootRoundTrip(t *testing.T) {
	p := NewPage(4096, NewRegistry())
	p.SetRoot(1234)
	if p.Root() != 1234 {
		t.Errorf("Root() = %d, want 1234", p.Root())
	}
	if !p.Dirty {
		t.Error("SetRoot should dirty the page")
	}
}

func TestFromBytesValidation(t *testing.T) {
	if _, err := FromBytes([]byte("nope"), nil); err == nil {
		t.Error("FromBytes should reject short/bad bytes")
	}
	if _, err := FromBytes(make([]byte, 100), nil); err == nil {
		t.Error("FromBytes should reject missing magic")
	}
}

func TestFromBytesUnmanaged(t *testing.T) {
	p := NewPage(4096, NewRegistry())
	clone := make([]byte, len(p.Data))
	copy(clone, p.Data)
	q, err := FromBytes(clone, NewRegistry())
	if err != nil {
		t.Fatalf("FromBytes: %v", err)
	}
	if q.Managed() {
		t.Error("adopted page must be un-managed (frozen refcounts)")
	}
}

func TestBytesIsOccupiedPrefix(t *testing.T) {
	p, a := newTestPage(t, 4096)
	if _, err := MakeString(a, "hello"); err != nil {
		t.Fatal(err)
	}
	b := p.Bytes()
	if uint32(len(b)) != p.Used() {
		t.Errorf("Bytes() length %d != Used() %d", len(b), p.Used())
	}
	if len(b) >= len(p.Data) {
		t.Error("Bytes() should be a strict prefix for a non-full page")
	}
}

func TestShipPagePreservesObjects(t *testing.T) {
	// The zero-cost movement property: copy the occupied bytes, adopt
	// them elsewhere, and every object is readable without any decode
	// step.
	p, a := newTestPage(t, 8192)
	v, err := MakeVector(a, KFloat64, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := v.PushBackF64(a, float64(i)*1.5); err != nil {
			t.Fatal(err)
		}
	}
	p.SetRoot(v.Off)

	shipped := make([]byte, len(p.Bytes()))
	copy(shipped, p.Bytes())

	q, err := FromBytes(shipped, p.Reg)
	if err != nil {
		t.Fatal(err)
	}
	rv := AsVector(Ref{Page: q, Off: q.Root()})
	if rv.Len() != 100 {
		t.Fatalf("shipped vector Len = %d, want 100", rv.Len())
	}
	for i := 0; i < 100; i++ {
		if got := rv.F64At(i); got != float64(i)*1.5 {
			t.Fatalf("shipped elem %d = %g, want %g", i, got, float64(i)*1.5)
		}
	}
}

func TestRetainReleaseLifecycle(t *testing.T) {
	p, a := newTestPage(t, 4096)
	s, err := MakeString(a, "ephemeral")
	if err != nil {
		t.Fatal(err)
	}
	if p.ActiveObjects() != 1 {
		t.Fatalf("ActiveObjects = %d, want 1", p.ActiveObjects())
	}
	s.Retain()
	if s.RefCount() != 1 {
		t.Errorf("RefCount = %d, want 1", s.RefCount())
	}
	s.Release()
	if p.ActiveObjects() != 0 {
		t.Errorf("after release, ActiveObjects = %d, want 0", p.ActiveObjects())
	}
}

func TestUnmanagedPageFreezesCounts(t *testing.T) {
	p, a := newTestPage(t, 4096)
	s, _ := MakeString(a, "frozen")
	p.SetManaged(false)
	s.Retain()
	if s.RefCount() != 0 {
		t.Errorf("Retain on unmanaged page changed count to %d", s.RefCount())
	}
	s.Release()
	if p.ActiveObjects() != 1 {
		t.Errorf("Release on unmanaged page freed object")
	}
}
