package object

// Slot-level OMap access for external lookup accelerators.
//
// The engine keeps page-backed OMaps as the durable aggregation state (the
// bytes ARE the checkpoint/spill format) but overlays an in-memory swiss
// index mapping key hashes to slot numbers. The index needs to read keys
// and values by slot, claim insertion slots, and write values — with the
// exact byte effects of Put/Update, in the exact same order — without
// re-probing the map's own linear-probe chain. These exported wrappers
// expose just that surface; every one delegates to the corresponding
// internal method, so the page byte stream cannot diverge from the
// un-indexed path.

// Slots returns the current slot-array capacity.
func (m OMap) Slots() int { return m.slots() }

// SlotFull reports whether slot i holds an entry.
func (m OMap) SlotFull(i int) bool { return m.slotState(i) == slotFull }

// KeyAt reads the key stored in slot i (which must be full).
func (m OMap) KeyAt(i int) Value { return m.readKey(i) }

// ValAt reads the value stored in slot i (which must be full).
func (m OMap) ValAt(i int) Value { return m.readVal(i) }

// KeyEqualsAt compares the key in slot i against key using the map's
// key-kind equality (registered type Equal for handle keys).
func (m OMap) KeyEqualsAt(i int, key Value) bool { return m.keyEquals(i, key) }

// HashKey hashes key exactly as the map's own probing does (registered
// type Hash for handle keys, HashValue otherwise).
func (m OMap) HashKey(key Value) uint64 { return m.hashKey(key) }

// FindSlot runs the map's own linear probe for key, returning the holding
// slot (found=true) or the insertion slot (found=false).
func (m OMap) FindSlot(key Value) (int, bool) { return m.find(key) }

// WriteValAt stores val into slot i with Put's value-write semantics
// (string values allocate, handle slots deep-copy foreign pages).
func (m OMap) WriteValAt(a *Allocator, i int, val Value) error {
	return m.writeVal(a, i, val)
}

// MaybeGrow applies Put/Update's pre-insert growth rule — rehash to double
// the slots when one more entry would reach 70% load — and reports whether
// a rehash ran (slot numbers are invalid afterwards). Callers mirroring
// Put/Update must invoke this BEFORE probing, even when the key turns out
// to already be present: the baseline grows on updates too, and matching
// its byte stream means matching its growth points.
func (m OMap) MaybeGrow(a *Allocator) (bool, error) {
	if (m.Len()+1)*10 >= m.slots()*7 {
		if err := m.rehash(a, m.slots()*2); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

// ClaimSlot marks empty slot i full, writes key into it (rolling the slot
// back to empty if the key write fails), and bumps the entry count — the
// exact insert prefix of Put/Update before the value write.
func (m OMap) ClaimSlot(a *Allocator, i int, key Value) error {
	m.setSlotState(i, slotFull)
	if err := m.writeKey(a, i, key); err != nil {
		m.setSlotState(i, slotEmpty)
		return err
	}
	m.setLen(m.Len() + 1)
	return nil
}
