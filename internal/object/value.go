package object

import (
	"fmt"
	"math"
)

// Value is the tagged scalar that flows between the object model and the
// vectorized execution engine: the result of a member access, method call,
// or lambda evaluation. It is a by-value union; only the field selected by
// K is meaningful.
type Value struct {
	K Kind
	I int64
	F float64
	B bool
	S string
	H Ref
}

// Convenience constructors.

func BoolValue(b bool) Value       { return Value{K: KBool, B: b} }
func Int32Value(i int32) Value     { return Value{K: KInt32, I: int64(i)} }
func Int64Value(i int64) Value     { return Value{K: KInt64, I: i} }
func Float64Value(f float64) Value { return Value{K: KFloat64, F: f} }
func StringValue(s string) Value   { return Value{K: KString, S: s} }
func HandleValue(r Ref) Value      { return Value{K: KHandle, H: r} }

// AsFloat64 widens numeric values to float64 (used by arithmetic lambdas).
func (v Value) AsFloat64() float64 {
	switch v.K {
	case KFloat64:
		return v.F
	case KInt32, KInt64:
		return float64(v.I)
	case KBool:
		if v.B {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// AsInt64 narrows numeric values to int64.
func (v Value) AsInt64() int64 {
	switch v.K {
	case KInt32, KInt64:
		return v.I
	case KFloat64:
		return int64(v.F)
	case KBool:
		if v.B {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// Equal compares two values of compatible kinds.
func (v Value) Equal(o Value) bool {
	switch v.K {
	case KBool:
		return o.K == KBool && v.B == o.B
	case KInt32, KInt64:
		switch o.K {
		case KInt32, KInt64:
			return v.I == o.I
		case KFloat64:
			return float64(v.I) == o.F
		}
		return false
	case KFloat64:
		switch o.K {
		case KFloat64:
			return v.F == o.F
		case KInt32, KInt64:
			return v.F == float64(o.I)
		}
		return false
	case KString:
		return o.K == KString && v.S == o.S
	case KHandle:
		return o.K == KHandle && v.H == o.H
	default:
		return v.K == o.K
	}
}

// Less imposes an ordering on comparable values (numeric and string kinds).
func (v Value) Less(o Value) bool {
	switch v.K {
	case KInt32, KInt64:
		switch o.K {
		case KInt32, KInt64:
			return v.I < o.I
		case KFloat64:
			return float64(v.I) < o.F
		}
	case KFloat64:
		switch o.K {
		case KFloat64:
			return v.F < o.F
		case KInt32, KInt64:
			return v.F < float64(o.I)
		}
	case KString:
		if o.K == KString {
			return v.S < o.S
		}
	}
	return false
}

func (v Value) String() string {
	switch v.K {
	case KBool:
		return fmt.Sprintf("%v", v.B)
	case KInt32, KInt64:
		return fmt.Sprintf("%d", v.I)
	case KFloat64:
		return fmt.Sprintf("%g", v.F)
	case KString:
		return fmt.Sprintf("%q", v.S)
	case KHandle:
		if v.H.IsNil() {
			return "nil"
		}
		return fmt.Sprintf("handle@%d", v.H.Off)
	default:
		return "invalid"
	}
}

// HashValue computes a 64-bit hash of a scalar value (FNV-1a), used for map
// keys and join-key hashing (the TCAP HASH operation).
func HashValue(v Value) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	mix8 := func(u uint64) {
		for i := 0; i < 8; i++ {
			mix(byte(u >> (8 * i)))
		}
	}
	switch v.K {
	case KBool:
		if v.B {
			mix(1)
		} else {
			mix(0)
		}
	case KInt32, KInt64:
		mix8(uint64(v.I))
	case KFloat64:
		// Normalize -0.0 to 0.0 so equal floats hash equally.
		f := v.F
		if f == 0 {
			f = 0
		}
		mix8(math.Float64bits(f))
	case KString:
		for i := 0; i < len(v.S); i++ {
			mix(v.S[i])
		}
	case KHandle:
		mix8(uint64(v.H.Off))
	}
	return h
}
