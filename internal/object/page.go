package object

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Layout constants for the on-page binary format. Everything needed to
// interpret a page is stored inside the page bytes themselves so that a page
// remains valid after a byte-wise move between processes, to disk, or over
// the network.
const (
	// PageHeaderSize is the fixed page header:
	//   [0:4]   magic "PCPG"
	//   [4:8]   used watermark (next free offset)
	//   [8:12]  active (live, not-yet-freed) object count
	//   [12:16] root object payload offset (0 = none)
	//   [16:20] flags (bit0: managed)
	//   [20:24] reserved
	PageHeaderSize = 24

	// ObjHeaderSize is the per-object header preceding each payload:
	//   [0:4] refcount word (low 30 bits count; bit31 no-refcount;
	//         bit30 unique-ownership)
	//   [4:8] type code
	//   [8:12] payload size
	ObjHeaderSize = 12

	// HandleSize is the size of an in-page handle slot:
	//   [0:4] relative offset (int32, target payload offset minus slot
	//         offset; 0 = nil)
	//   [4:8] type code of the pointee
	HandleSize = 8
)

const (
	pageMagic = "PCPG"

	flagManaged uint32 = 1 << 0

	rcCountMask   uint32 = 0x3FFFFFFF
	rcNoRefCount  uint32 = 1 << 31
	rcUniqueOwner uint32 = 1 << 30
)

// Common object-model errors.
var (
	// ErrPageFull is returned when an allocation does not fit on the
	// active allocation block. The execution engine reacts by obtaining
	// a fresh page (paper §6.1: "out-of-memory execution ... means that
	// the page is full").
	ErrPageFull = errors.New("object: allocation block full")

	// ErrBadPage is returned when page bytes fail validation.
	ErrBadPage = errors.New("object: invalid page bytes")

	// ErrCrossPage is returned when a handle located outside the active
	// allocation block is assigned a target on a different page; the
	// object model only performs the automatic deep copy for handles on
	// the active block (paper §6.4).
	ErrCrossPage = errors.New("object: cross-page handle assignment outside active block")

	// ErrNilObject is returned when dereferencing a nil Ref.
	ErrNilObject = errors.New("object: nil object reference")
)

// Page is a block of memory in which PC objects are allocated in place.
// Only Data is meaningful for persistence; the remaining fields are runtime
// bookkeeping (buffer pool identity, registry association) and are
// reconstructed when a page is adopted by a process via FromBytes.
type Page struct {
	Data []byte

	// Reg resolves type codes for destructor and deep-copy traversal.
	// It is process-local state, never persisted.
	Reg *Registry

	// ID identifies the page within a storage/buffer-pool context.
	ID uint64

	// Dirty marks the page as modified since load (buffer pool use).
	Dirty bool

	// alloc points at the allocator currently treating this page as its
	// active block, if any. Freed space is only recycled while the page
	// is active; afterwards the page is an inactive managed block whose
	// objects are still refcounted but whose space is not reused.
	alloc *Allocator
}

// NewPage creates an empty managed page of the given total size.
func NewPage(size int, reg *Registry) *Page {
	if size < PageHeaderSize+ObjHeaderSize {
		panic(fmt.Sprintf("object: page size %d too small", size))
	}
	p := &Page{Data: make([]byte, size), Reg: reg}
	copy(p.Data[0:4], pageMagic)
	p.setUsed(PageHeaderSize)
	p.setFlags(flagManaged)
	return p
}

// FromBytes adopts page bytes received from disk or the network. The page is
// un-managed: reference counts inside it are frozen (paper §6.4's "inactive,
// un-managed blocks"), and its space is controlled by the execution engine
// rather than by the object model.
func FromBytes(b []byte, reg *Registry) (*Page, error) {
	if len(b) < PageHeaderSize || string(b[0:4]) != pageMagic {
		return nil, ErrBadPage
	}
	p := &Page{Data: b, Reg: reg}
	if int(p.Used()) > len(b) {
		return nil, fmt.Errorf("%w: used %d exceeds page size %d", ErrBadPage, p.Used(), len(b))
	}
	p.setFlags(p.flags() &^ flagManaged)
	return p, nil
}

// Bytes returns the occupied prefix of the page: the bytes that must be
// moved to ship every object on the page. Shipping a page is exactly one
// copy of these bytes — the zero-cost data movement principle.
func (p *Page) Bytes() []byte { return p.Data[:p.Used()] }

// Used returns the allocation watermark.
func (p *Page) Used() uint32 { return binary.LittleEndian.Uint32(p.Data[4:8]) }

func (p *Page) setUsed(u uint32) { binary.LittleEndian.PutUint32(p.Data[4:8], u) }

// ActiveObjects returns the count of live (allocated and not freed) objects
// on the page. A managed page whose count drops to zero can be returned to
// the buffer pool (paper §6.4).
func (p *Page) ActiveObjects() uint32 { return binary.LittleEndian.Uint32(p.Data[8:12]) }

func (p *Page) setActiveObjects(n uint32) { binary.LittleEndian.PutUint32(p.Data[8:12], n) }

// Root returns the payload offset of the page's root object (by convention
// the top-level container, e.g. a Vector of handles), or 0 if unset.
func (p *Page) Root() uint32 { return binary.LittleEndian.Uint32(p.Data[12:16]) }

// SetRoot records the page's root object.
func (p *Page) SetRoot(off uint32) {
	binary.LittleEndian.PutUint32(p.Data[12:16], off)
	p.Dirty = true
}

func (p *Page) flags() uint32     { return binary.LittleEndian.Uint32(p.Data[16:20]) }
func (p *Page) setFlags(f uint32) { binary.LittleEndian.PutUint32(p.Data[16:20], f) }

// Managed reports whether the object model reference-counts objects on this
// page. Pages loaded from bytes are un-managed; pages created locally are
// managed until shipped.
func (p *Page) Managed() bool { return p.flags()&flagManaged != 0 }

// SetManaged toggles management, used by the engine when handing a page
// between the object model and the storage layer.
func (p *Page) SetManaged(m bool) {
	if m {
		p.setFlags(p.flags() | flagManaged)
	} else {
		p.setFlags(p.flags() &^ flagManaged)
	}
}

// Remaining returns the free bytes left on the page past the watermark.
func (p *Page) Remaining() uint32 { return uint32(len(p.Data)) - p.Used() }

// Ref is a process-local reference to an object payload on a page. Unlike
// in-page handle slots (which hold relative offsets), a Ref carries the page
// pointer and is only valid within the current process.
type Ref struct {
	Page *Page
	Off  uint32 // payload offset; header lives at Off-ObjHeaderSize
}

// NilRef is the zero Ref.
var NilRef = Ref{}

// IsNil reports whether the Ref points at nothing.
func (r Ref) IsNil() bool { return r.Page == nil || r.Off == 0 }

func (r Ref) header() uint32 { return r.Off - ObjHeaderSize }

// TypeCode returns the object's type code from its header.
func (r Ref) TypeCode() uint32 {
	return binary.LittleEndian.Uint32(r.Page.Data[r.header()+4 : r.header()+8])
}

// PayloadSize returns the object's payload size from its header.
func (r Ref) PayloadSize() uint32 {
	return binary.LittleEndian.Uint32(r.Page.Data[r.header()+8 : r.header()+12])
}

// Payload returns the object's payload bytes.
func (r Ref) Payload() []byte { return r.Page.Data[r.Off : r.Off+r.PayloadSize()] }

func (r Ref) rcWord() uint32 {
	return binary.LittleEndian.Uint32(r.Page.Data[r.header() : r.header()+4])
}

func (r Ref) setRCWord(w uint32) {
	binary.LittleEndian.PutUint32(r.Page.Data[r.header():r.header()+4], w)
}

// RefCount returns the object's current reference count (meaningful only on
// managed pages for objects without the no-refcount policy).
func (r Ref) RefCount() uint32 { return r.rcWord() & rcCountMask }

// NoRefCount reports whether the object opted out of reference counting
// (pure region allocation for this object, paper Appendix B).
func (r Ref) NoRefCount() bool { return r.rcWord()&rcNoRefCount != 0 }

// UniqueOwner reports whether the object uses unique-ownership semantics:
// not counted, deallocated when its single referencing handle dies.
func (r Ref) UniqueOwner() bool { return r.rcWord()&rcUniqueOwner != 0 }

// counted reports whether refcount mutations apply to this object: the page
// must be managed by the local process and the object must not opt out.
// Un-managed pages freeze their counts — this is what makes cross-thread
// handle copies lock-free in the paper (§6.5).
func (r Ref) counted() bool {
	return r.Page.Managed() && r.rcWord()&(rcNoRefCount|rcUniqueOwner) == 0
}

// Retain increments the reference count (a Go-side owning reference, the
// analogue of holding a Handle variable in the C++ binding).
func (r Ref) Retain() {
	if r.IsNil() || !r.counted() {
		return
	}
	r.setRCWord(r.rcWord() + 1)
}

// Release decrements the reference count, destroying and freeing the object
// when the count reaches zero. Destruction recursively releases every handle
// the object holds (vector elements, map entries, struct fields).
func (r Ref) Release() {
	if r.IsNil() {
		return
	}
	if r.UniqueOwner() && r.Page.Managed() {
		destroyObject(r)
		return
	}
	if !r.counted() {
		return
	}
	w := r.rcWord()
	if w&rcCountMask == 0 {
		// Releasing an object that was never retained: treat as a
		// destruction request (temporary that never escaped).
		destroyObject(r)
		return
	}
	w--
	r.setRCWord(w)
	if w&rcCountMask == 0 {
		destroyObject(r)
	}
}
