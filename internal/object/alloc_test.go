package object

import (
	"testing"
	"testing/quick"
)

func TestAllocBasics(t *testing.T) {
	_, a := newTestPage(t, 4096)
	off, err := a.Alloc(16, TCRaw, FullRefCount)
	if err != nil {
		t.Fatal(err)
	}
	r := Ref{Page: a.Page, Off: off}
	if r.TypeCode() != TCRaw {
		t.Errorf("TypeCode = %d, want TCRaw", r.TypeCode())
	}
	if r.PayloadSize() != 16 {
		t.Errorf("PayloadSize = %d, want 16", r.PayloadSize())
	}
	if r.RefCount() != 0 {
		t.Errorf("fresh object RefCount = %d, want 0", r.RefCount())
	}
}

func TestAllocPageFull(t *testing.T) {
	_, a := newTestPage(t, 256)
	var lastErr error
	for i := 0; i < 100; i++ {
		if _, lastErr = a.Alloc(64, TCRaw, FullRefCount); lastErr != nil {
			break
		}
	}
	if lastErr != ErrPageFull {
		t.Fatalf("expected ErrPageFull, got %v", lastErr)
	}
}

func TestAllocZeroesRecycledSpace(t *testing.T) {
	_, a := newTestPage(t, 4096)
	off, _ := a.Alloc(32, TCRaw, FullRefCount)
	r := Ref{Page: a.Page, Off: off}
	for i := range r.Payload() {
		r.Payload()[i] = 0xFF
	}
	r.Retain()
	r.Release() // freed -> freelist
	off2, _ := a.Alloc(32, TCRaw, FullRefCount)
	if off2 != off {
		t.Fatalf("lightweight reuse should hand back the freed chunk (got %d, want %d)", off2, off)
	}
	for i, b := range (Ref{Page: a.Page, Off: off2}).Payload() {
		if b != 0 {
			t.Fatalf("recycled payload byte %d = %#x, want 0", i, b)
		}
	}
}

func TestPolicyNoReuseNeverRecycles(t *testing.T) {
	p := NewPage(4096, NewRegistry())
	a := NewAllocator(p, PolicyNoReuse)
	off, _ := a.Alloc(32, TCRaw, FullRefCount)
	r := Ref{Page: p, Off: off}
	r.Retain()
	usedBefore := p.Used()
	r.Release()
	off2, _ := a.Alloc(32, TCRaw, FullRefCount)
	if off2 == off {
		t.Error("no-reuse policy must not reuse freed space")
	}
	if p.Used() <= usedBefore {
		t.Error("no-reuse allocation should advance the watermark")
	}
}

func TestPolicyRecyclingReusesSameType(t *testing.T) {
	reg := NewRegistry()
	ti := NewStruct("Recyclable").
		AddField("x", KFloat64).
		AddField("y", KInt64).
		MustBuild(reg)
	p := NewPage(4096, reg)
	a := NewAllocator(p, PolicyRecycling)

	r1, err := a.MakeObject(ti)
	if err != nil {
		t.Fatal(err)
	}
	off1 := r1.Off
	SetF64(r1, ti.Field("x"), 42)
	r1.Retain()
	r1.Release()

	r2, err := a.MakeObject(ti)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Off != off1 {
		t.Errorf("recycling should reuse the exact object slot: got %d, want %d", r2.Off, off1)
	}
	if a.Stats.RecycleHits != 1 {
		t.Errorf("RecycleHits = %d, want 1", a.Stats.RecycleHits)
	}
	if GetF64(r2, ti.Field("x")) != 0 {
		t.Error("recycled object payload must be zeroed")
	}
}

func TestNoRefCountObjectPolicy(t *testing.T) {
	reg := NewRegistry()
	ti := NewStruct("Region").AddField("x", KInt64).MustBuild(reg)
	p := NewPage(4096, reg)
	a := NewAllocator(p, PolicyLightweightReuse)

	r, err := a.MakeObjectPolicy(ti, NoRefCount)
	if err != nil {
		t.Fatal(err)
	}
	if !r.NoRefCount() {
		t.Fatal("object should carry the no-refcount flag")
	}
	r.Retain()
	r.Release()
	r.Release()
	if p.ActiveObjects() != 1 {
		t.Error("no-refcount object must never be freed by Release")
	}
}

func TestUniqueOwnershipFreesOnRelease(t *testing.T) {
	reg := NewRegistry()
	ti := NewStruct("Uniq").AddField("x", KInt64).MustBuild(reg)
	p := NewPage(4096, reg)
	a := NewAllocator(p, PolicyLightweightReuse)

	r, err := a.MakeObjectPolicy(ti, UniqueOwnership)
	if err != nil {
		t.Fatal(err)
	}
	if !r.UniqueOwner() {
		t.Fatal("object should carry unique-ownership flag")
	}
	r.Release()
	if p.ActiveObjects() != 0 {
		t.Error("unique-owner release must destroy the object")
	}
}

func TestDestructorReleasesChildren(t *testing.T) {
	reg := NewRegistry()
	ti := NewStruct("Holder").
		AddField("name", KString).
		AddField("data", KHandle).
		MustBuild(reg)
	p := NewPage(8192, reg)
	a := NewAllocator(p, PolicyLightweightReuse)

	h, err := a.MakeObject(ti)
	if err != nil {
		t.Fatal(err)
	}
	if err := SetStrField(a, h, ti.Field("name"), "child-string"); err != nil {
		t.Fatal(err)
	}
	v, err := MakeVector(a, KFloat64, 4)
	if err != nil {
		t.Fatal(err)
	}
	_ = v.PushBackF64(a, 3.14)
	if err := SetHandleField(a, h, ti.Field("data"), v.Ref); err != nil {
		t.Fatal(err)
	}
	// holder + string + vector + vector's array
	if p.ActiveObjects() != 4 {
		t.Fatalf("ActiveObjects = %d, want 4", p.ActiveObjects())
	}
	h.Retain()
	h.Release()
	if p.ActiveObjects() != 0 {
		t.Errorf("after destroying holder, ActiveObjects = %d, want 0 (children must cascade)", p.ActiveObjects())
	}
}

func TestAllocatorDetachStopsReuse(t *testing.T) {
	p, a := newTestPage(t, 4096)
	off, _ := a.Alloc(32, TCRaw, FullRefCount)
	a.Detach()
	r := Ref{Page: p, Off: off}
	r.Retain()
	r.Release() // page inactive: object destroyed, space not recycled
	if p.ActiveObjects() != 0 {
		t.Error("objects on inactive managed blocks are still refcounted")
	}
}

func TestAllocAlignment(t *testing.T) {
	_, a := newTestPage(t, 4096)
	for _, sz := range []uint32{1, 3, 7, 8, 9, 31, 64} {
		off, err := a.Alloc(sz, TCRaw, FullRefCount)
		if err != nil {
			t.Fatal(err)
		}
		if (off-ObjHeaderSize)%4 != 0 {
			t.Errorf("object header for size %d not 4-aligned: payload off %d", sz, off)
		}
	}
}

// Property: a random sequence of allocations and frees never corrupts the
// page: every live object keeps its header intact and the active count
// matches the model.
func TestQuickAllocFreeInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		p := NewPage(1<<16, NewRegistry())
		a := NewAllocator(p, PolicyLightweightReuse)
		type obj struct {
			off  uint32
			size uint32
			fill byte
		}
		var live []obj
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				// free a pseudo-random live object
				i := int(op) % len(live)
				r := Ref{Page: p, Off: live[i].off}
				r.Retain()
				r.Release()
				live = append(live[:i], live[i+1:]...)
				continue
			}
			size := uint32(op%200) + 1
			off, err := a.Alloc(size, TCRaw, FullRefCount)
			if err != nil {
				continue // page full is fine
			}
			fill := byte(op)
			r := Ref{Page: p, Off: off}
			for j := range r.Payload() {
				r.Payload()[j] = fill
			}
			live = append(live, obj{off, size, fill})
		}
		if int(p.ActiveObjects()) != len(live) {
			return false
		}
		for _, o := range live {
			r := Ref{Page: p, Off: o.off}
			if r.PayloadSize() != o.size || r.TypeCode() != TCRaw {
				return false
			}
			for _, b := range r.Payload() {
				if b != o.fill {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
