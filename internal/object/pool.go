package object

import (
	"encoding/binary"
	"sync"
)

// Reset returns a page to its pristine state without zeroing its body:
// "deallocating" a page of objects means returning it to the buffer pool,
// where it will be recycled and written over with a new set of objects
// (paper §3). Safe because the allocator zeroes each allocation's payload
// and only the occupied prefix of a page is ever shipped or persisted.
func (p *Page) Reset() {
	copy(p.Data[0:4], pageMagic)
	p.setUsed(PageHeaderSize)
	p.setActiveObjects(0)
	binary.LittleEndian.PutUint32(p.Data[12:16], 0) // root
	p.setFlags(flagManaged)
	p.Dirty = false
	if p.alloc != nil {
		p.alloc.Page = nil
		p.alloc = nil
	}
}

// PagePool recycles fixed-size pages, eliminating the dominant cost of
// page churn (allocating and zeroing fresh blocks) in iterative jobs — the
// role the worker's buffer pool plays in the paper's runtime.
type PagePool struct {
	Size int
	pool sync.Pool

	mu     sync.Mutex
	reuses int
}

// NewPagePool creates a pool of pages of the given size.
func NewPagePool(size int) *PagePool { return &PagePool{Size: size} }

// Get returns a pristine page, recycling a returned one when available.
func (pp *PagePool) Get(reg *Registry) *Page {
	if v := pp.pool.Get(); v != nil {
		p := v.(*Page)
		p.Reg = reg
		p.Reset()
		pp.mu.Lock()
		pp.reuses++
		pp.mu.Unlock()
		return p
	}
	return NewPage(pp.Size, reg)
}

// Put returns a page whose data are dead. Pages of a different size are
// dropped (the pool is homogeneous, like a buffer pool frame).
func (pp *PagePool) Put(p *Page) {
	if p == nil || len(p.Data) != pp.Size {
		return
	}
	p.Reg = nil
	pp.pool.Put(p)
}

// Reuses reports how many pages were served from the pool (tests).
func (pp *PagePool) Reuses() int {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	return pp.reuses
}
