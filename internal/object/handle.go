package object

import (
	"encoding/binary"
	"fmt"
)

// In-page handle slots: 8 bytes holding (relative offset, type code). The
// relative offset is the target payload offset minus the slot offset, so the
// slot stays valid when the whole page is moved byte-wise.

// ReadHandleSlot resolves the handle slot at slotOff on page p.
func ReadHandleSlot(p *Page, slotOff uint32) Ref {
	rel := int32(binary.LittleEndian.Uint32(p.Data[slotOff : slotOff+4]))
	if rel == 0 {
		return NilRef
	}
	return Ref{Page: p, Off: uint32(int64(slotOff) + int64(rel))}
}

// HandleSlotTypeCode returns the pointee type code stored in the slot
// without dereferencing (used for dispatch decisions before touching the
// target, paper §6.3).
func HandleSlotTypeCode(p *Page, slotOff uint32) uint32 {
	return binary.LittleEndian.Uint32(p.Data[slotOff+4 : slotOff+8])
}

// WriteHandleSlot assigns target to the handle slot at slotOff on page p,
// enforcing the object model's cross-block rule: if the slot lives on the
// active allocation block of a and the target lives on a different page, the
// target is deep-copied into the active block so that every page remains
// self-contained and zero-cost movable (paper §6.4).
//
// Reference counts are maintained: the old target is released, the new
// target retained (on managed pages).
func WriteHandleSlot(a *Allocator, p *Page, slotOff uint32, target Ref) error {
	old := ReadHandleSlot(p, slotOff)

	if !target.IsNil() && target.Page != p {
		if a == nil || a.Page != p {
			return ErrCrossPage
		}
		copied, err := DeepCopy(a, target)
		if err != nil {
			return err
		}
		target = copied
	}

	d := p.Data
	if target.IsNil() {
		binary.LittleEndian.PutUint32(d[slotOff:slotOff+4], 0)
		binary.LittleEndian.PutUint32(d[slotOff+4:slotOff+8], TCNil)
	} else {
		rel := int64(target.Off) - int64(slotOff)
		if rel == 0 {
			return fmt.Errorf("object: handle slot cannot point at itself")
		}
		binary.LittleEndian.PutUint32(d[slotOff:slotOff+4], uint32(int32(rel)))
		binary.LittleEndian.PutUint32(d[slotOff+4:slotOff+8], target.TypeCode())
		target.Retain()
	}
	old.Release()
	p.Dirty = true
	return nil
}

// rewriteHandleSlotRaw rewrites a slot's relative offset for a target known
// to be on the same page, without touching reference counts (used by map
// rehashing and array growth where the logical reference set is unchanged).
func rewriteHandleSlotRaw(p *Page, slotOff uint32, target Ref) {
	d := p.Data
	if target.IsNil() {
		binary.LittleEndian.PutUint32(d[slotOff:slotOff+4], 0)
		binary.LittleEndian.PutUint32(d[slotOff+4:slotOff+8], TCNil)
		return
	}
	rel := int64(target.Off) - int64(slotOff)
	binary.LittleEndian.PutUint32(d[slotOff:slotOff+4], uint32(int32(rel)))
	binary.LittleEndian.PutUint32(d[slotOff+4:slotOff+8], target.TypeCode())
}

// Scalar field accessors for registered user types. Hot paths take a *Field
// (resolved once) rather than a name.

// GetF64 reads a float64 field.
func GetF64(r Ref, f *Field) float64 {
	return float64frombits(binary.LittleEndian.Uint64(r.Page.Data[r.Off+f.Off : r.Off+f.Off+8]))
}

// SetF64 writes a float64 field.
func SetF64(r Ref, f *Field, v float64) {
	binary.LittleEndian.PutUint64(r.Page.Data[r.Off+f.Off:r.Off+f.Off+8], float64bits(v))
	r.Page.Dirty = true
}

// GetI32 reads an int32 field.
func GetI32(r Ref, f *Field) int32 {
	return int32(binary.LittleEndian.Uint32(r.Page.Data[r.Off+f.Off : r.Off+f.Off+4]))
}

// SetI32 writes an int32 field.
func SetI32(r Ref, f *Field, v int32) {
	binary.LittleEndian.PutUint32(r.Page.Data[r.Off+f.Off:r.Off+f.Off+4], uint32(v))
	r.Page.Dirty = true
}

// GetI64 reads an int64 field.
func GetI64(r Ref, f *Field) int64 {
	return int64(binary.LittleEndian.Uint64(r.Page.Data[r.Off+f.Off : r.Off+f.Off+8]))
}

// SetI64 writes an int64 field.
func SetI64(r Ref, f *Field, v int64) {
	binary.LittleEndian.PutUint64(r.Page.Data[r.Off+f.Off:r.Off+f.Off+8], uint64(v))
	r.Page.Dirty = true
}

// GetBool reads a bool field.
func GetBool(r Ref, f *Field) bool { return r.Page.Data[r.Off+f.Off] != 0 }

// SetBool writes a bool field.
func SetBool(r Ref, f *Field, v bool) {
	if v {
		r.Page.Data[r.Off+f.Off] = 1
	} else {
		r.Page.Data[r.Off+f.Off] = 0
	}
	r.Page.Dirty = true
}

// GetHandleField resolves a handle (or string) field to its target.
func GetHandleField(r Ref, f *Field) Ref { return ReadHandleSlot(r.Page, r.Off+f.Off) }

// SetHandleField assigns a handle field, applying the cross-block deep-copy
// rule through WriteHandleSlot.
func SetHandleField(a *Allocator, r Ref, f *Field, target Ref) error {
	return WriteHandleSlot(a, r.Page, r.Off+f.Off, target)
}

// GetStrField reads a string field's contents ("" for nil).
func GetStrField(r Ref, f *Field) string {
	t := GetHandleField(r, f)
	if t.IsNil() {
		return ""
	}
	return StringContents(t)
}

// SetStrField allocates a string object on the active block and points the
// field at it.
func SetStrField(a *Allocator, r Ref, f *Field, s string) error {
	sr, err := MakeString(a, s)
	if err != nil {
		return err
	}
	return SetHandleField(a, r, f, sr)
}

// GetField reads any field as a Value, dispatching on the field kind.
func GetField(r Ref, f *Field) Value {
	switch f.Kind {
	case KBool:
		return BoolValue(GetBool(r, f))
	case KInt32:
		return Int32Value(GetI32(r, f))
	case KInt64:
		return Int64Value(GetI64(r, f))
	case KFloat64:
		return Float64Value(GetF64(r, f))
	case KString:
		return StringValue(GetStrField(r, f))
	case KHandle:
		return HandleValue(GetHandleField(r, f))
	default:
		return Value{}
	}
}

// SetField writes any field from a Value, dispatching on the field kind.
func SetField(a *Allocator, r Ref, f *Field, v Value) error {
	switch f.Kind {
	case KBool:
		SetBool(r, f, v.B)
	case KInt32:
		SetI32(r, f, int32(v.AsInt64()))
	case KInt64:
		SetI64(r, f, v.AsInt64())
	case KFloat64:
		SetF64(r, f, v.AsFloat64())
	case KString:
		return SetStrField(a, r, f, v.S)
	case KHandle:
		return SetHandleField(a, r, f, v.H)
	default:
		return fmt.Errorf("object: cannot set field of kind %v", f.Kind)
	}
	return nil
}
