package object

import "fmt"

// DeepCopy copies the object graph rooted at src into the allocator's active
// block, returning the copy's Ref. Sharing within the graph is preserved via
// memoization (two handles to one object copy to two handles to one copy),
// which also terminates on cyclic graphs.
//
// This is the mechanism behind the paper's automatic cross-block assignment
// rule (§6.4): PC never allows a handle to point off its page, so assigning
// a foreign target deep-copies it into the active block. It is also the
// virtual "deep copy function" every Object descendant carries — here
// dispatched through the type registry instead of a vTable.
func DeepCopy(a *Allocator, src Ref) (Ref, error) {
	if src.IsNil() {
		return NilRef, nil
	}
	a.Stats.DeepCopies++
	memo := make(map[Ref]Ref)
	return deepCopy(a, src, memo)
}

func deepCopy(a *Allocator, src Ref, memo map[Ref]Ref) (Ref, error) {
	if src.IsNil() {
		return NilRef, nil
	}
	if dst, ok := memo[src]; ok {
		return dst, nil
	}
	tc := src.TypeCode()
	switch {
	case IsSimpleCode(tc), tc == TCString, tc == TCRaw:
		return copyFlat(a, src, memo)
	case tc == TCArray:
		// Raw arrays are only meaningful through their containing
		// Vector/Map, which copy them with element awareness; a bare
		// array copy is a flat byte copy.
		return copyFlat(a, src, memo)
	case tc == TCVector:
		return copyVector(a, Vector{src}, memo)
	case tc == TCMap:
		return copyMap(a, OMap{src}, memo)
	default:
		return copyUser(a, src, memo)
	}
}

func copyFlat(a *Allocator, src Ref, memo map[Ref]Ref) (Ref, error) {
	size := src.PayloadSize()
	off, err := a.Alloc(size, src.TypeCode(), FullRefCount)
	if err != nil {
		return NilRef, err
	}
	dst := Ref{Page: a.Page, Off: off}
	copy(dst.Page.Data[off:off+size], src.Page.Data[src.Off:src.Off+size])
	memo[src] = dst
	return dst, nil
}

func copyVector(a *Allocator, src Vector, memo map[Ref]Ref) (Ref, error) {
	n := src.Len()
	kind := src.ElemKind()
	dst, err := MakeVector(a, kind, n)
	if err != nil {
		return NilRef, err
	}
	memo[src.Ref] = dst.Ref
	dst.setLen(n)
	if n == 0 {
		return dst.Ref, nil
	}
	if !kind.IsHandleKind() {
		es := kind.Size()
		copy(dst.Page.Data[dst.elemOff(0):dst.elemOff(0)+uint32(n)*es],
			src.Page.Data[src.elemOff(0):src.elemOff(0)+uint32(n)*es])
		return dst.Ref, nil
	}
	for i := 0; i < n; i++ {
		child, err := deepCopy(a, src.HandleAt(i), memo)
		if err != nil {
			return NilRef, err
		}
		rewriteHandleSlotRaw(dst.Page, dst.elemOff(i), child)
		child.Retain()
	}
	return dst.Ref, nil
}

func copyMap(a *Allocator, src OMap, memo map[Ref]Ref) (Ref, error) {
	dst, err := MakeMap(a, src.KeyKind(), src.ValKind(), src.Len()*2)
	if err != nil {
		return NilRef, err
	}
	memo[src.Ref] = dst.Ref
	var copyErr error
	src.Iterate(func(key, val Value) bool {
		if key.K == KHandle && !key.H.IsNil() {
			child, err := deepCopy(a, key.H, memo)
			if err != nil {
				copyErr = err
				return false
			}
			key = HandleValue(child)
		}
		if val.K == KHandle && !val.H.IsNil() {
			child, err := deepCopy(a, val.H, memo)
			if err != nil {
				copyErr = err
				return false
			}
			val = HandleValue(child)
		}
		if err := dst.Put(a, key, val); err != nil {
			copyErr = err
			return false
		}
		return true
	})
	if copyErr != nil {
		return NilRef, copyErr
	}
	return dst.Ref, nil
}

func copyUser(a *Allocator, src Ref, memo map[Ref]Ref) (Ref, error) {
	ti := lookupType(src)
	if ti == nil {
		return NilRef, fmt.Errorf("object: deep copy of unregistered type code %d", src.TypeCode())
	}
	size := src.PayloadSize()
	off, err := a.Alloc(size, src.TypeCode(), FullRefCount)
	if err != nil {
		return NilRef, err
	}
	dst := Ref{Page: a.Page, Off: off}
	copy(dst.Page.Data[off:off+size], src.Page.Data[src.Off:src.Off+size])
	memo[src] = dst
	for _, f := range ti.HandleFields() {
		child, err := deepCopy(a, GetHandleField(src, f), memo)
		if err != nil {
			return NilRef, err
		}
		rewriteHandleSlotRaw(dst.Page, dst.Off+f.Off, child)
		child.Retain()
	}
	return dst, nil
}

// Equal performs a deep structural comparison of two object graphs (test and
// verification helper; not part of the hot path).
func Equal(a, b Ref) bool {
	return deepEqual(a, b, make(map[[2]Ref]bool))
}

func deepEqual(a, b Ref, seen map[[2]Ref]bool) bool {
	if a.IsNil() || b.IsNil() {
		return a.IsNil() == b.IsNil()
	}
	key := [2]Ref{a, b}
	if seen[key] {
		return true
	}
	seen[key] = true
	ta, tb := a.TypeCode(), b.TypeCode()
	if ta != tb {
		return false
	}
	switch {
	case IsSimpleCode(ta), ta == TCString, ta == TCRaw, ta == TCArray:
		return string(a.Payload()) == string(b.Payload())
	case ta == TCVector:
		va, vb := Vector{a}, Vector{b}
		if va.Len() != vb.Len() || va.ElemKind() != vb.ElemKind() {
			return false
		}
		for i, n := 0, va.Len(); i < n; i++ {
			if va.ElemKind().IsHandleKind() && va.ElemKind() != KString {
				if !deepEqual(va.HandleAt(i), vb.HandleAt(i), seen) {
					return false
				}
			} else if !va.At(i).Equal(vb.At(i)) {
				return false
			}
		}
		return true
	case ta == TCMap:
		ma, mb := OMap{a}, OMap{b}
		if ma.Len() != mb.Len() {
			return false
		}
		eq := true
		ma.Iterate(func(k, v Value) bool {
			ov, ok := mb.Get(k)
			if !ok {
				eq = false
				return false
			}
			if v.K == KHandle {
				eq = deepEqual(v.H, ov.H, seen)
			} else {
				eq = v.Equal(ov)
			}
			return eq
		})
		return eq
	default:
		tia := lookupType(a)
		if tia == nil {
			return string(a.Payload()) == string(b.Payload())
		}
		for i := range tia.Fields {
			f := &tia.Fields[i]
			if f.Kind == KHandle {
				if !deepEqual(GetHandleField(a, f), GetHandleField(b, f), seen) {
					return false
				}
			} else if !GetField(a, f).Equal(GetField(b, f)) {
				return false
			}
		}
		return true
	}
}
