package object

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestMapPutGetI64(t *testing.T) {
	_, a := newTestPage(t, 1<<16)
	m, err := MakeMap(a, KInt64, KFloat64, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 200; i++ {
		if err := m.Put(a, Int64Value(i), Float64Value(float64(i)*2)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != 200 {
		t.Fatalf("Len = %d, want 200", m.Len())
	}
	for i := int64(0); i < 200; i++ {
		v, ok := m.Get(Int64Value(i))
		if !ok || v.F != float64(i)*2 {
			t.Fatalf("Get(%d) = (%v, %v)", i, v, ok)
		}
	}
	if _, ok := m.Get(Int64Value(999)); ok {
		t.Error("Get of absent key returned ok")
	}
}

func TestMapOverwrite(t *testing.T) {
	_, a := newTestPage(t, 1<<16)
	m, _ := MakeMap(a, KInt64, KInt64, 8)
	_ = m.Put(a, Int64Value(1), Int64Value(10))
	_ = m.Put(a, Int64Value(1), Int64Value(20))
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1 after overwrite", m.Len())
	}
	v, _ := m.Get(Int64Value(1))
	if v.I != 20 {
		t.Errorf("value = %d, want 20", v.I)
	}
}

func TestMapStringKeys(t *testing.T) {
	_, a := newTestPage(t, 1<<18)
	m, err := MakeMap(a, KString, KInt64, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("customer-%03d", i)
		if err := m.Put(a, StringValue(key), Int64Value(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("customer-%03d", i)
		v, ok := m.Get(StringValue(key))
		if !ok || v.I != int64(i) {
			t.Fatalf("Get(%q) = (%v,%v)", key, v, ok)
		}
	}
}

func TestMapHandleValues(t *testing.T) {
	_, a := newTestPage(t, 1<<18)
	m, err := MakeMap(a, KString, KHandle, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's customers-per-supplier shape: Map<String, Handle<Vector<int>>>.
	for i := 0; i < 20; i++ {
		v, err := MakeVector(a, KInt64, 0)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j <= i; j++ {
			_ = v.PushBackI64(a, int64(j))
		}
		if err := m.Put(a, StringValue(fmt.Sprintf("s%d", i)), HandleValue(v.Ref)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		got, ok := m.Get(StringValue(fmt.Sprintf("s%d", i)))
		if !ok {
			t.Fatalf("missing key s%d", i)
		}
		v := AsVector(got.H)
		if v.Len() != i+1 {
			t.Fatalf("s%d vector len = %d, want %d", i, v.Len(), i+1)
		}
	}
}

func TestMapUpdateAggregation(t *testing.T) {
	_, a := newTestPage(t, 1<<16)
	m, _ := MakeMap(a, KInt64, KFloat64, 8)
	// Sum value per key — the aggregation primitive.
	for i := 0; i < 300; i++ {
		key := Int64Value(int64(i % 7))
		err := m.Update(a, key, func(cur Value, ok bool) Value {
			if !ok {
				return Float64Value(1)
			}
			return Float64Value(cur.F + 1)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != 7 {
		t.Fatalf("Len = %d, want 7", m.Len())
	}
	total := 0.0
	m.Iterate(func(k, v Value) bool {
		total += v.F
		return true
	})
	if total != 300 {
		t.Errorf("total count = %g, want 300", total)
	}
}

func TestMapSurvivesShipping(t *testing.T) {
	p, a := newTestPage(t, 1<<18)
	m, _ := MakeMap(a, KString, KFloat64, 8)
	for i := 0; i < 50; i++ {
		_ = m.Put(a, StringValue(fmt.Sprintf("k%02d", i)), Float64Value(float64(i)))
	}
	p.SetRoot(m.Off)

	shipped := make([]byte, len(p.Bytes()))
	copy(shipped, p.Bytes())
	q, err := FromBytes(shipped, p.Reg)
	if err != nil {
		t.Fatal(err)
	}
	rm := AsMap(Ref{Page: q, Off: q.Root()})
	if rm.Len() != 50 {
		t.Fatalf("shipped map Len = %d, want 50", rm.Len())
	}
	for i := 0; i < 50; i++ {
		v, ok := rm.Get(StringValue(fmt.Sprintf("k%02d", i)))
		if !ok || v.F != float64(i) {
			t.Fatalf("shipped Get(k%02d) = (%v, %v)", i, v, ok)
		}
	}
}

func TestMapHandleKeysWithRegisteredHash(t *testing.T) {
	reg := NewRegistry()
	ti := NewStruct("PairKey").
		AddField("row", KInt32).
		AddField("col", KInt32).
		MustBuild(reg)
	ti.Hash = func(r Ref) uint64 {
		return uint64(GetI32(r, ti.Field("row")))*1000003 + uint64(GetI32(r, ti.Field("col")))
	}
	ti.Equal = func(a, b Ref) bool {
		return GetI32(a, ti.Field("row")) == GetI32(b, ti.Field("row")) &&
			GetI32(a, ti.Field("col")) == GetI32(b, ti.Field("col"))
	}
	p := NewPage(1<<18, reg)
	a := NewAllocator(p, PolicyLightweightReuse)

	// The sparse matrix block shape: Map<pair<int,int>, double>.
	m, err := MakeMap(a, KHandle, KFloat64, 8)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(r, c int32) Ref {
		o, err := a.MakeObject(ti)
		if err != nil {
			t.Fatal(err)
		}
		SetI32(o, ti.Field("row"), r)
		SetI32(o, ti.Field("col"), c)
		return o
	}
	for i := int32(0); i < 30; i++ {
		if err := m.Put(a, HandleValue(mk(i, i*2)), Float64Value(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := int32(0); i < 30; i++ {
		probe := mk(i, i*2)
		v, ok := m.Get(HandleValue(probe))
		if !ok || v.F != float64(i) {
			t.Fatalf("Get(pair %d) = (%v,%v)", i, v, ok)
		}
	}
}

// Property: a PC map matches a Go map under random put/update workloads.
func TestQuickMapMatchesGoMap(t *testing.T) {
	f := func(keys []int16, vals []int32) bool {
		p := NewPage(1<<20, NewRegistry())
		a := NewAllocator(p, PolicyLightweightReuse)
		m, err := MakeMap(a, KInt64, KInt64, 8)
		if err != nil {
			return false
		}
		model := map[int64]int64{}
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			k, v := int64(keys[i]), int64(vals[i])
			model[k] = v
			if err := m.Put(a, Int64Value(k), Int64Value(v)); err != nil {
				return false
			}
		}
		if m.Len() != len(model) {
			return false
		}
		for k, want := range model {
			got, ok := m.Get(Int64Value(k))
			if !ok || got.I != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
