package object

import "math"

func float64bits(f float64) uint64     { return math.Float64bits(f) }
func float64frombits(b uint64) float64 { return math.Float64frombits(b) }

// MakeString allocates a PC string object holding s on the active block.
// PC strings are deliberately minimal — the same representation in RAM and
// on disk, no cached hash values (paper §8.4.3 discusses the consequence).
func MakeString(a *Allocator, s string) (Ref, error) {
	off, err := a.Alloc(uint32(len(s)), TCString, FullRefCount)
	if err != nil {
		return NilRef, err
	}
	r := Ref{Page: a.Page, Off: off}
	copy(r.Page.Data[off:off+uint32(len(s))], s)
	return r, nil
}

// StringContents reads the contents of a string object.
func StringContents(r Ref) string {
	if r.IsNil() {
		return ""
	}
	n := r.PayloadSize()
	return string(r.Page.Data[r.Off : r.Off+n])
}
