package object

import "testing"

// TestHashValuePinned pins HashValue's exact outputs (FNV-1a with the
// engine's per-kind byte feeding). Every hash-dependent order in the
// system — OMap slot layout and growth points, partition routing, agg
// finalize iteration, exchange lane assignment — is a function of these
// values, and checkpoint/spill byte streams embed the slot layouts they
// induce. The swiss tables deliberately apply their stronger avalanche
// (swiss.Mix64) ONLY inside their own probe math, so these goldens must
// never move; a change here silently breaks replay of any persisted state
// and every bit-for-bit equivalence baseline. If a stronger engine-wide
// mixer is ever wanted, it needs a format version, not an edit.
func TestHashValuePinned(t *testing.T) {
	cases := []struct {
		name string
		v    Value
		want uint64
	}{
		{"bool-false", BoolValue(false), 0xaf63bd4c8601b7df},
		{"bool-true", BoolValue(true), 0xaf63bc4c8601b62c},
		{"int64-0", Int64Value(0), 0xa8c7f832281a39c5},
		{"int64-1", Int64Value(1), 0x89cd31291d2aefa4},
		{"int64-neg1", Int64Value(-1), 0x8cf51a8bfca3883d},
		{"int64-big", Int64Value(1234567890123), 0xe9c3256b4796776e},
		{"int32-7", Int32Value(7), 0x4bd7a317074c5b62},
		{"float64-0", Float64Value(0), 0xa8c7f832281a39c5},
		{"float64-1.5", Float64Value(1.5), 0xaa95e93229a27c80},
		{"float64-neg2.25", Float64Value(-2.25), 0xa8cf843228214657},
		{"string-empty", StringValue(""), 0xcbf29ce484222325},
		{"string-a", StringValue("a"), 0xaf63dc4c8601ec8c},
		{"string-pliny", StringValue("pliny"), 0xb921be4df0078479},
		{"string-long", StringValue("hash tables all the way down"), 0xa7ab96674952625b},
	}
	for _, c := range cases {
		if got := HashValue(c.v); got != c.want {
			t.Errorf("HashValue(%s) = %#x, pinned value %#x", c.name, got, c.want)
		}
	}
	// Negative zero normalizes to positive zero before hashing, so the two
	// representations stay in one aggregation group.
	if HashValue(Float64Value(negZero())) != HashValue(Float64Value(0)) {
		t.Error("HashValue(-0.0) != HashValue(0.0)")
	}
}

func negZero() float64 {
	z := 0.0
	return -z
}
