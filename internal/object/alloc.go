package object

import (
	"encoding/binary"
	"math/bits"
)

// Policy selects how an allocation block reclaims the space of deallocated
// objects (paper Appendix B). It is set per computation.
type Policy uint8

const (
	// PolicyLightweightReuse (the default) recycles freed space through
	// size-bucketed freelists: a freed chunk of total size n goes into
	// bucket ceil(log2(n)); allocation scans the matching bucket before
	// bumping the watermark.
	PolicyLightweightReuse Policy = iota

	// PolicyNoReuse never reuses freed space — classical region
	// allocation. Fastest, at the cost of holes on the page.
	PolicyNoReuse

	// PolicyRecycling layers a per-type free object cache on top of
	// lightweight reuse: freed fixed-length objects are kept on a
	// per-type-code list and handed back verbatim to the next
	// zero-argument MakeObject of the same type.
	PolicyRecycling
)

func (p Policy) String() string {
	switch p {
	case PolicyLightweightReuse:
		return "lightweight-reuse"
	case PolicyNoReuse:
		return "no-reuse"
	case PolicyRecycling:
		return "recycling"
	default:
		return "unknown"
	}
}

// ObjectPolicy selects per-object reference-counting behaviour at allocation
// time (paper Appendix B).
type ObjectPolicy uint8

const (
	// FullRefCount is the default: the object is reference counted and
	// destroyed when its count returns to zero.
	FullRefCount ObjectPolicy = iota

	// NoRefCount opts the object out of counting entirely; it lives
	// until its page is recycled (pure region semantics).
	NoRefCount

	// UniqueOwnership is not counted but destroyed when its single
	// referencing handle is destroyed or reassigned.
	UniqueOwnership
)

// AllocStats accumulates allocator activity for benchmarks and tests.
type AllocStats struct {
	Allocs         uint64
	Frees          uint64
	BytesAllocated uint64
	ReuseHits      uint64
	RecycleHits    uint64
	DeepCopies     uint64
}

const numBuckets = 32

// Allocator manages the active allocation block for one thread of execution
// — the paper's makeObjectAllocatorBlock. All MakeObject calls go to the
// current block; when it fills, ErrPageFull propagates and the caller (user
// code or the execution engine) installs a fresh page.
type Allocator struct {
	Page   *Page
	Policy Policy
	Stats  AllocStats

	reg     *Registry
	free    [numBuckets][]uint32 // freed payload offsets by ceil-log2(total size)
	recycle map[uint32][]uint32  // type code -> freed payload offsets
}

// NewAllocator makes page the active allocation block with the given reuse
// policy. The page must be managed. If the page was another allocator's
// active block, that block becomes inactive (its freelists are abandoned,
// matching the paper: inactive managed blocks only shrink).
func NewAllocator(p *Page, policy Policy) *Allocator {
	a := &Allocator{Page: p, Policy: policy, reg: p.Reg}
	if policy == PolicyRecycling {
		a.recycle = make(map[uint32][]uint32)
	}
	if p.alloc != nil {
		p.alloc.Page = nil
	}
	p.alloc = a
	return a
}

// Detach makes the allocator's page an inactive managed block (e.g. when the
// engine seals an output page for shipping) and returns it.
func (a *Allocator) Detach() *Page {
	p := a.Page
	if p != nil {
		p.alloc = nil
	}
	a.Page = nil
	return p
}

func bucketFor(total uint32) int {
	b := bits.Len32(total - 1)
	if b >= numBuckets {
		return numBuckets - 1
	}
	return b
}

func alignUp(n, a uint32) uint32 {
	if rem := n % a; rem != 0 {
		return n + a - rem
	}
	return n
}

// Alloc reserves space for an object with the given payload size, type code
// and per-object policy, returning the payload offset. The object starts
// with reference count zero; writing a handle to it (or Retain) takes
// ownership.
func (a *Allocator) Alloc(payloadSize, typeCode uint32, op ObjectPolicy) (uint32, error) {
	if a.Page == nil {
		return 0, ErrPageFull
	}
	size := alignUp(payloadSize, 8)
	total := ObjHeaderSize + size

	off := a.takeFree(total)
	if off == 0 {
		base := alignUp(a.Page.Used(), 4)
		if uint64(base)+uint64(total) > uint64(len(a.Page.Data)) {
			return 0, ErrPageFull
		}
		a.Page.setUsed(base + total)
		off = base + ObjHeaderSize
	}
	h := off - ObjHeaderSize
	var rc uint32
	switch op {
	case NoRefCount:
		rc = rcNoRefCount
	case UniqueOwnership:
		rc = rcUniqueOwner
	}
	d := a.Page.Data
	binary.LittleEndian.PutUint32(d[h:h+4], rc)
	binary.LittleEndian.PutUint32(d[h+4:h+8], typeCode)
	binary.LittleEndian.PutUint32(d[h+8:h+12], payloadSize)
	// Zero the payload: recycled space may hold stale bytes.
	for i := off; i < off+size; i++ {
		d[i] = 0
	}
	a.Page.setActiveObjects(a.Page.ActiveObjects() + 1)
	a.Page.Dirty = true
	a.Stats.Allocs++
	a.Stats.BytesAllocated += uint64(total)
	return off, nil
}

// takeFree searches the reuse structures for a chunk able to hold total
// bytes, returning its payload offset or 0.
func (a *Allocator) takeFree(total uint32) uint32 {
	if a.Policy == PolicyNoReuse {
		return 0
	}
	b := bucketFor(total)
	list := a.free[b]
	for i, off := range list {
		chunkTotal := ObjHeaderSize + alignUp(a.chunkPayload(off), 8)
		if chunkTotal >= total {
			a.free[b] = append(list[:i], list[i+1:]...)
			a.Stats.ReuseHits++
			return off
		}
	}
	return 0
}

func (a *Allocator) chunkPayload(off uint32) uint32 {
	h := off - ObjHeaderSize
	return binary.LittleEndian.Uint32(a.Page.Data[h+8 : h+12])
}

// reclaim returns a destroyed object's space to the allocator (called from
// destroyObject when the object's page is this allocator's active block).
func (a *Allocator) reclaim(off, typeCode uint32) {
	a.Stats.Frees++
	switch a.Policy {
	case PolicyNoReuse:
		return
	case PolicyRecycling:
		if !IsSimpleCode(typeCode) && typeCode >= FirstUserTypeCode {
			a.recycle[typeCode] = append(a.recycle[typeCode], off)
			return
		}
	}
	total := ObjHeaderSize + alignUp(a.chunkPayload(off), 8)
	b := bucketFor(total)
	a.free[b] = append(a.free[b], off)
}

// takeRecycled pops a recycled object of the given type, if any. The object
// retains its previous header; the caller re-initializes the refcount word
// and zeroes the payload.
func (a *Allocator) takeRecycled(typeCode uint32) (uint32, bool) {
	if a.Policy != PolicyRecycling {
		return 0, false
	}
	list := a.recycle[typeCode]
	if len(list) == 0 {
		return 0, false
	}
	off := list[len(list)-1]
	a.recycle[typeCode] = list[:len(list)-1]
	a.Stats.RecycleHits++
	return off, true
}

// MakeObject allocates a zeroed instance of a registered user type with the
// default (full refcount) policy.
func (a *Allocator) MakeObject(ti *TypeInfo) (Ref, error) {
	return a.MakeObjectPolicy(ti, FullRefCount)
}

// MakeObjectPolicy allocates a zeroed instance of a registered user type
// with an explicit per-object policy. Under the recycling allocator policy,
// a previously freed object of the same type is reused when available
// (the paper's zero-argument-constructor fast path).
func (a *Allocator) MakeObjectPolicy(ti *TypeInfo, op ObjectPolicy) (Ref, error) {
	if off, ok := a.takeRecycled(ti.Code); ok {
		h := off - ObjHeaderSize
		d := a.Page.Data
		var rc uint32
		switch op {
		case NoRefCount:
			rc = rcNoRefCount
		case UniqueOwnership:
			rc = rcUniqueOwner
		}
		binary.LittleEndian.PutUint32(d[h:h+4], rc)
		size := alignUp(ti.Size, 8)
		for i := off; i < off+size; i++ {
			d[i] = 0
		}
		a.Page.setActiveObjects(a.Page.ActiveObjects() + 1)
		a.Stats.Allocs++
		return Ref{Page: a.Page, Off: off}, nil
	}
	off, err := a.Alloc(ti.Size, ti.Code, op)
	if err != nil {
		return NilRef, err
	}
	return Ref{Page: a.Page, Off: off}, nil
}

// MakeRaw allocates an uninterpreted blob (simple type): no handles inside,
// memmove-copyable, with the size encoded in its type code.
func (a *Allocator) MakeRaw(size uint32) (Ref, error) {
	off, err := a.Alloc(size, SimpleCode(size), FullRefCount)
	if err != nil {
		return NilRef, err
	}
	return Ref{Page: a.Page, Off: off}, nil
}

// destroyObject runs the object's destructor (recursively releasing held
// handles) and frees its space. It is invoked when a refcount reaches zero
// or a unique owner dies.
func destroyObject(r Ref) {
	if r.IsNil() || !r.Page.Managed() {
		return
	}
	// Mark destroyed first to cut reference cycles: set count high bit
	// pattern? Simpler: drop active count and rely on acyclic graphs,
	// which the deep-copy discipline guarantees for cross-page data.
	releaseChildren(r)
	p := r.Page
	if n := p.ActiveObjects(); n > 0 {
		p.setActiveObjects(n - 1)
	}
	if p.alloc != nil {
		p.alloc.reclaim(r.Off, r.TypeCode())
	}
}

// releaseChildren releases every handle the object holds, dispatching on the
// object's type code.
func releaseChildren(r Ref) {
	tc := r.TypeCode()
	switch {
	case IsSimpleCode(tc), tc == TCString, tc == TCArray, tc == TCRaw, tc == TCNil:
		return
	case tc == TCVector:
		v := Vector{r}
		if v.ElemKind().IsHandleKind() {
			for i, n := 0, v.Len(); i < n; i++ {
				v.HandleAt(i).Release()
			}
		}
		v.dataRef().Release()
	case tc == TCMap:
		m := OMap{r}
		m.releaseEntries()
		m.slotsRef().Release()
	default:
		ti := lookupType(r)
		if ti == nil {
			return
		}
		for _, f := range ti.HandleFields() {
			GetHandleField(r, f).Release()
		}
	}
}

func lookupType(r Ref) *TypeInfo {
	if r.Page.Reg == nil {
		return nil
	}
	return r.Page.Reg.Lookup(r.TypeCode())
}
