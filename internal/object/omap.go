package object

import (
	"encoding/binary"
	"fmt"
)

// OMap is PC's generic in-page hash map (the paper's Map container, used
// both by applications and internally by the execution engine to implement
// aggregation and hash joins). It is an open-addressing, linear-probing
// table whose slot array is a TCArray object on the same page, so the whole
// map — keys, values, nested objects — ships with the page.
//
// Supported key kinds: KInt64, KFloat64, KString, and KHandle (the latter
// requires the key type to register Hash and Equal functions, mirroring the
// paper's requirement that aggregation keys be hashable PC objects).
type OMap struct{ Ref }

const (
	mapCountOff = 0
	mapSlotsOff = 4
	mapKKindOff = 8
	mapVKindOff = 12
	mapDataOff  = 16
	mapHdrSize  = mapDataOff + HandleSize

	slotEmpty uint32 = 0
	slotFull  uint32 = 1
)

// MakeMap allocates an empty map with the given key/value kinds.
func MakeMap(a *Allocator, keyKind, valKind Kind, initSlots int) (OMap, error) {
	switch keyKind {
	case KInt64, KFloat64, KString, KHandle:
	default:
		return OMap{}, fmt.Errorf("object: unsupported map key kind %v", keyKind)
	}
	if valKind.Size() == 0 {
		return OMap{}, fmt.Errorf("object: unsupported map value kind %v", valKind)
	}
	if initSlots < 8 {
		initSlots = 8
	}
	initSlots = nextPow2(initSlots)
	off, err := a.Alloc(mapHdrSize, TCMap, FullRefCount)
	if err != nil {
		return OMap{}, err
	}
	m := OMap{Ref{Page: a.Page, Off: off}}
	d := m.Page.Data
	binary.LittleEndian.PutUint32(d[off+mapKKindOff:], uint32(keyKind))
	binary.LittleEndian.PutUint32(d[off+mapVKindOff:], uint32(valKind))
	if err := m.allocSlots(a, initSlots); err != nil {
		return OMap{}, err
	}
	return m, nil
}

// AsMap views a Ref known to be a map.
func AsMap(r Ref) OMap { return OMap{r} }

func nextPow2(n int) int {
	p := 8
	for p < n {
		p *= 2
	}
	return p
}

// Len returns the number of entries.
func (m OMap) Len() int {
	return int(binary.LittleEndian.Uint32(m.Page.Data[m.Off+mapCountOff:]))
}

func (m OMap) setLen(n int) {
	binary.LittleEndian.PutUint32(m.Page.Data[m.Off+mapCountOff:], uint32(n))
}

func (m OMap) slots() int {
	return int(binary.LittleEndian.Uint32(m.Page.Data[m.Off+mapSlotsOff:]))
}

func (m OMap) setSlots(n int) {
	binary.LittleEndian.PutUint32(m.Page.Data[m.Off+mapSlotsOff:], uint32(n))
}

// KeyKind returns the key storage kind.
func (m OMap) KeyKind() Kind {
	return Kind(binary.LittleEndian.Uint32(m.Page.Data[m.Off+mapKKindOff:]))
}

// ValKind returns the value storage kind.
func (m OMap) ValKind() Kind {
	return Kind(binary.LittleEndian.Uint32(m.Page.Data[m.Off+mapVKindOff:]))
}

func (m OMap) slotsRef() Ref { return ReadHandleSlot(m.Page, m.Off+mapDataOff) }

func (m OMap) slotSize() uint32 { return 4 + m.KeyKind().Size() + m.ValKind().Size() }

func (m OMap) slotOff(i int) uint32 { return m.slotsRef().Off + uint32(i)*m.slotSize() }

func (m OMap) slotState(i int) uint32 {
	return binary.LittleEndian.Uint32(m.Page.Data[m.slotOff(i):])
}

func (m OMap) setSlotState(i int, s uint32) {
	binary.LittleEndian.PutUint32(m.Page.Data[m.slotOff(i):], s)
}

func (m OMap) keyOff(i int) uint32 { return m.slotOff(i) + 4 }

func (m OMap) valOff(i int) uint32 { return m.slotOff(i) + 4 + m.KeyKind().Size() }

func (m OMap) allocSlots(a *Allocator, n int) error {
	arrOff, err := a.Alloc(uint32(n)*m.slotSize(), TCArray, FullRefCount)
	if err != nil {
		return err
	}
	arr := Ref{Page: a.Page, Off: arrOff}
	rewriteHandleSlotRaw(m.Page, m.Off+mapDataOff, arr)
	arr.Retain()
	m.setSlots(n)
	return nil
}

// hashKey hashes a key value according to the map's key kind. Handle keys
// dispatch through the registered type's Hash function.
func (m OMap) hashKey(key Value) uint64 {
	if m.KeyKind() == KHandle && key.K == KHandle && !key.H.IsNil() {
		if ti := lookupType(key.H); ti != nil && ti.Hash != nil {
			return ti.Hash(key.H)
		}
	}
	return HashValue(key)
}

// readKey reads the key stored in slot i as a Value.
func (m OMap) readKey(i int) Value {
	off := m.keyOff(i)
	d := m.Page.Data
	switch m.KeyKind() {
	case KInt64:
		return Int64Value(int64(binary.LittleEndian.Uint64(d[off:])))
	case KFloat64:
		return Float64Value(float64frombits(binary.LittleEndian.Uint64(d[off:])))
	case KString:
		return StringValue(StringContents(ReadHandleSlot(m.Page, off)))
	case KHandle:
		return HandleValue(ReadHandleSlot(m.Page, off))
	default:
		return Value{}
	}
}

// keyEquals compares the key in slot i with key.
func (m OMap) keyEquals(i int, key Value) bool {
	stored := m.readKey(i)
	if m.KeyKind() == KHandle && !stored.H.IsNil() && key.K == KHandle && !key.H.IsNil() {
		if ti := lookupType(stored.H); ti != nil && ti.Equal != nil {
			return ti.Equal(stored.H, key.H)
		}
	}
	return stored.Equal(key)
}

// readVal reads the value stored in slot i.
func (m OMap) readVal(i int) Value {
	off := m.valOff(i)
	d := m.Page.Data
	switch m.ValKind() {
	case KBool:
		return BoolValue(d[off] != 0)
	case KInt32:
		return Int32Value(int32(binary.LittleEndian.Uint32(d[off:])))
	case KInt64:
		return Int64Value(int64(binary.LittleEndian.Uint64(d[off:])))
	case KFloat64:
		return Float64Value(float64frombits(binary.LittleEndian.Uint64(d[off:])))
	case KString:
		return StringValue(StringContents(ReadHandleSlot(m.Page, off)))
	case KHandle:
		return HandleValue(ReadHandleSlot(m.Page, off))
	default:
		return Value{}
	}
}

// writeKey stores key into slot i (allocating string key objects as needed).
func (m OMap) writeKey(a *Allocator, i int, key Value) error {
	off := m.keyOff(i)
	d := m.Page.Data
	switch m.KeyKind() {
	case KInt64:
		binary.LittleEndian.PutUint64(d[off:], uint64(key.AsInt64()))
	case KFloat64:
		binary.LittleEndian.PutUint64(d[off:], float64bits(key.AsFloat64()))
	case KString:
		sr, err := MakeString(a, key.S)
		if err != nil {
			return err
		}
		return WriteHandleSlot(a, m.Page, off, sr)
	case KHandle:
		return WriteHandleSlot(a, m.Page, off, key.H)
	}
	return nil
}

// writeVal stores val into slot i.
func (m OMap) writeVal(a *Allocator, i int, val Value) error {
	off := m.valOff(i)
	d := m.Page.Data
	switch m.ValKind() {
	case KBool:
		if val.B {
			d[off] = 1
		} else {
			d[off] = 0
		}
	case KInt32:
		binary.LittleEndian.PutUint32(d[off:], uint32(val.AsInt64()))
	case KInt64:
		binary.LittleEndian.PutUint64(d[off:], uint64(val.AsInt64()))
	case KFloat64:
		binary.LittleEndian.PutUint64(d[off:], float64bits(val.AsFloat64()))
	case KString:
		sr, err := MakeString(a, val.S)
		if err != nil {
			return err
		}
		return WriteHandleSlot(a, m.Page, off, sr)
	case KHandle:
		return WriteHandleSlot(a, m.Page, off, val.H)
	}
	return nil
}

// find locates the slot holding key, or the insertion slot. Returns (slot,
// found).
func (m OMap) find(key Value) (int, bool) {
	n := m.slots()
	mask := n - 1
	i := int(m.hashKey(key)) & mask
	for {
		switch m.slotState(i) {
		case slotEmpty:
			return i, false
		case slotFull:
			if m.keyEquals(i, key) {
				return i, true
			}
		}
		i = (i + 1) & mask
	}
}

// Get returns the value for key.
func (m OMap) Get(key Value) (Value, bool) {
	i, ok := m.find(key)
	if !ok {
		return Value{}, false
	}
	return m.readVal(i), true
}

// Put inserts or overwrites key's value, growing the table past a 70% load
// factor. Foreign-page handle keys/values are deep-copied by the slot-write
// rule.
func (m OMap) Put(a *Allocator, key, val Value) error {
	if (m.Len()+1)*10 >= m.slots()*7 {
		if err := m.rehash(a, m.slots()*2); err != nil {
			return err
		}
	}
	i, found := m.find(key)
	if !found {
		m.setSlotState(i, slotFull)
		if err := m.writeKey(a, i, key); err != nil {
			// Roll back the claimed slot so the table stays sound.
			m.setSlotState(i, slotEmpty)
			return err
		}
		m.setLen(m.Len() + 1)
	}
	return m.writeVal(a, i, val)
}

// Update looks up key and applies fn to its current value (ok=false when
// absent), storing the result. This is the aggregation primitive: one probe
// per (key, value) pair.
func (m OMap) Update(a *Allocator, key Value, fn func(cur Value, ok bool) Value) error {
	if (m.Len()+1)*10 >= m.slots()*7 {
		if err := m.rehash(a, m.slots()*2); err != nil {
			return err
		}
	}
	i, found := m.find(key)
	if !found {
		m.setSlotState(i, slotFull)
		if err := m.writeKey(a, i, key); err != nil {
			m.setSlotState(i, slotEmpty)
			return err
		}
		m.setLen(m.Len() + 1)
		return m.writeVal(a, i, fn(Value{}, false))
	}
	return m.writeVal(a, i, fn(m.readVal(i), true))
}

// rehash doubles the slot array. Handle slots are re-anchored with raw
// rewrites (the logical reference set is unchanged).
func (m OMap) rehash(a *Allocator, newSlots int) error {
	oldArr := m.slotsRef()
	oldN := m.slots()
	type entry struct {
		keyOff, valOff uint32
	}
	var live []entry
	for i := 0; i < oldN; i++ {
		if m.slotState(i) == slotFull {
			live = append(live, entry{m.keyOff(i), m.valOff(i)})
		}
	}
	if err := m.allocSlots(a, newSlots); err != nil {
		return err
	}
	d := m.Page.Data
	kk, vk := m.KeyKind(), m.ValKind()
	mask := newSlots - 1
	for _, e := range live {
		// Reconstruct the key value from the old slot location.
		var key Value
		switch kk {
		case KInt64:
			key = Int64Value(int64(binary.LittleEndian.Uint64(d[e.keyOff:])))
		case KFloat64:
			key = Float64Value(float64frombits(binary.LittleEndian.Uint64(d[e.keyOff:])))
		case KString:
			key = StringValue(StringContents(ReadHandleSlot(m.Page, e.keyOff)))
		case KHandle:
			key = HandleValue(ReadHandleSlot(m.Page, e.keyOff))
		}
		i := int(m.hashKey(key)) & mask
		for m.slotState(i) == slotFull {
			i = (i + 1) & mask
		}
		m.setSlotState(i, slotFull)
		// Move key and value bytes, re-anchoring handle slots.
		if kk.IsHandleKind() {
			rewriteHandleSlotRaw(m.Page, m.keyOff(i), ReadHandleSlot(m.Page, e.keyOff))
		} else {
			copy(d[m.keyOff(i):m.keyOff(i)+kk.Size()], d[e.keyOff:e.keyOff+kk.Size()])
		}
		if vk.IsHandleKind() {
			rewriteHandleSlotRaw(m.Page, m.valOff(i), ReadHandleSlot(m.Page, e.valOff))
		} else {
			copy(d[m.valOff(i):m.valOff(i)+vk.Size()], d[e.valOff:e.valOff+vk.Size()])
		}
	}
	oldArr.Release() // arrays never traverse children; moved refs stay live
	return nil
}

// Iterate calls fn for each entry until fn returns false.
func (m OMap) Iterate(fn func(key, val Value) bool) {
	n := m.slots()
	for i := 0; i < n; i++ {
		if m.slotState(i) == slotFull {
			if !fn(m.readKey(i), m.readVal(i)) {
				return
			}
		}
	}
}

// releaseEntries releases all handle keys/values (destructor support).
func (m OMap) releaseEntries() {
	kk, vk := m.KeyKind(), m.ValKind()
	if !kk.IsHandleKind() && !vk.IsHandleKind() {
		return
	}
	n := m.slots()
	for i := 0; i < n; i++ {
		if m.slotState(i) != slotFull {
			continue
		}
		if kk.IsHandleKind() {
			ReadHandleSlot(m.Page, m.keyOff(i)).Release()
		}
		if vk.IsHandleKind() {
			ReadHandleSlot(m.Page, m.valOff(i)).Release()
		}
	}
}
