package object

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestVectorPushAndRead(t *testing.T) {
	_, a := newTestPage(t, 1<<16)
	v, err := MakeVector(a, KFloat64, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := v.PushBackF64(a, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if v.Len() != 500 {
		t.Fatalf("Len = %d, want 500", v.Len())
	}
	for i := 0; i < 500; i++ {
		if v.F64At(i) != float64(i) {
			t.Fatalf("elem %d = %g", i, v.F64At(i))
		}
	}
}

func TestVectorKinds(t *testing.T) {
	_, a := newTestPage(t, 1<<16)
	cases := []struct {
		kind Kind
		vals []Value
	}{
		{KBool, []Value{BoolValue(true), BoolValue(false), BoolValue(true)}},
		{KInt32, []Value{Int32Value(-7), Int32Value(1 << 30)}},
		{KInt64, []Value{Int64Value(-1), Int64Value(1 << 60)}},
		{KFloat64, []Value{Float64Value(3.25), Float64Value(-0.5)}},
		{KString, []Value{StringValue("a"), StringValue("longer string value")}},
	}
	for _, tc := range cases {
		v, err := MakeVector(a, tc.kind, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, val := range tc.vals {
			if err := v.PushBack(a, val); err != nil {
				t.Fatal(err)
			}
		}
		for i, want := range tc.vals {
			if got := v.At(i); !got.Equal(want) {
				t.Errorf("%v vector elem %d = %v, want %v", tc.kind, i, got, want)
			}
		}
	}
}

func TestVectorHandleElements(t *testing.T) {
	reg := NewRegistry()
	ti := NewStruct("Pt").AddField("x", KFloat64).MustBuild(reg)
	p := NewPage(1<<16, reg)
	a := NewAllocator(p, PolicyLightweightReuse)

	v, err := MakeVector(a, KHandle, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		o, err := a.MakeObject(ti)
		if err != nil {
			t.Fatal(err)
		}
		SetF64(o, ti.Field("x"), float64(i))
		if err := v.PushBackHandle(a, o); err != nil {
			t.Fatal(err)
		}
	}
	// Growth relocated the backing array several times; handles must
	// still resolve.
	for i := 0; i < 50; i++ {
		o := v.HandleAt(i)
		if o.IsNil() {
			t.Fatalf("elem %d is nil after growth", i)
		}
		if got := GetF64(o, ti.Field("x")); got != float64(i) {
			t.Fatalf("elem %d x = %g, want %d", i, got, i)
		}
	}
}

func TestVectorSetOutOfRange(t *testing.T) {
	_, a := newTestPage(t, 4096)
	v, _ := MakeVector(a, KFloat64, 0)
	if err := v.Set(a, 0, Float64Value(1)); err == nil {
		t.Error("Set past the end should fail")
	}
}

func TestVectorGrowthReleasesOldArray(t *testing.T) {
	p, a := newTestPage(t, 1<<16)
	v, _ := MakeVector(a, KFloat64, 2)
	before := p.ActiveObjects() // vector + array
	for i := 0; i < 64; i++ {
		_ = v.PushBackF64(a, 1)
	}
	// Growth must not leak arrays: still exactly vector + one array.
	if p.ActiveObjects() != before {
		t.Errorf("ActiveObjects = %d, want %d (old arrays must be freed)", p.ActiveObjects(), before)
	}
}

func TestVectorFloat64SliceAndAppend(t *testing.T) {
	_, a := newTestPage(t, 1<<16)
	v, _ := MakeVector(a, KFloat64, 0)
	in := []float64{1, 2, 3, 5, 8, 13}
	if err := v.AppendFloat64s(a, in); err != nil {
		t.Fatal(err)
	}
	out := v.Float64Slice()
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("elem %d = %g, want %g", i, out[i], in[i])
		}
	}
}

// Property: a PC vector behaves exactly like a Go float64 slice under a
// random push/set workload.
func TestQuickVectorMatchesSlice(t *testing.T) {
	f := func(xs []float64, setIdx []uint8) bool {
		p := NewPage(1<<20, NewRegistry())
		a := NewAllocator(p, PolicyLightweightReuse)
		v, err := MakeVector(a, KFloat64, 0)
		if err != nil {
			return false
		}
		model := make([]float64, 0, len(xs))
		for _, x := range xs {
			if err := v.PushBackF64(a, x); err != nil {
				return false
			}
			model = append(model, x)
		}
		for _, si := range setIdx {
			if len(model) == 0 {
				break
			}
			i := int(si) % len(model)
			model[i] = float64(si) * 0.5
			v.SetF64(i, float64(si)*0.5)
		}
		if v.Len() != len(model) {
			return false
		}
		for i, want := range model {
			if v.F64At(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestVectorPushBackFaultRollsBackLength drives cross-page handle pushes
// into a small page until the deep copy faults with ErrPageFull: the failed
// push must not leave a phantom nil element behind (the length is rolled
// back), because rotate-and-retry callers seal the faulted page and readers
// iterate its root vector assuming every element resolves.
func TestVectorPushBackFaultRollsBackLength(t *testing.T) {
	reg := NewRegistry()
	ti := NewStruct("Blob").
		AddField("a", KInt64).
		AddField("b", KInt64).
		AddField("c", KInt64).
		MustBuild(reg)

	src := NewPage(1<<16, reg)
	sa := NewAllocator(src, PolicyLightweightReuse)
	obj, err := sa.MakeObject(ti)
	if err != nil {
		t.Fatal(err)
	}
	SetI64(obj, ti.Field("a"), 7)

	dst := NewPage(1<<12, reg)
	da := NewAllocator(dst, PolicyLightweightReuse)
	v, err := MakeVector(da, KHandle, 0)
	if err != nil {
		t.Fatal(err)
	}
	pushed := 0
	for {
		err := v.PushBackHandle(da, obj) // deep-copies cross-page
		if err == nil {
			pushed++
			continue
		}
		if !errors.Is(err, ErrPageFull) {
			t.Fatalf("push %d: %v", pushed, err)
		}
		break
	}
	if pushed == 0 {
		t.Fatal("page full before any push; grow the destination page")
	}
	if v.Len() != pushed {
		t.Fatalf("Len = %d after %d successful pushes (failed push left a phantom element)", v.Len(), pushed)
	}
	for i := 0; i < v.Len(); i++ {
		o := v.HandleAt(i)
		if o.IsNil() {
			t.Fatalf("elem %d is nil", i)
		}
		if got := GetI64(o, ti.Field("a")); got != 7 {
			t.Fatalf("elem %d a = %d, want 7", i, got)
		}
	}
}
