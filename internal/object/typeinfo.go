package object

import (
	"fmt"
	"sort"
	"sync"
)

// Field describes one member of a registered user type: its name, storage
// kind, and byte offset within the object payload. Fields of handle kinds
// are traversed by the destructor and deep-copy machinery.
type Field struct {
	Name string
	Kind Kind
	Off  uint32
}

// Method is a registered virtual method on a user type. Dispatch happens
// through the type code stored in each handle — the Go analogue of the
// paper's vTable-pointer patching (§6.3). Fn receives the receiver object
// and returns the method result as a Value.
type Method struct {
	Name string
	Ret  Kind
	Fn   func(Ref) Value
}

// TypeInfo is the registered description of a PC object type: layout,
// methods, and optional hash/equality used when objects of this type serve
// as map or join keys. It plays the role of the vTable plus the reflection
// metadata a C++ compiler would emit.
type TypeInfo struct {
	Code uint32
	Name string
	Size uint32 // payload size of the fixed-length portion

	Fields  []Field
	Methods map[string]Method

	// Hash and Equal are optional; required only when objects of this
	// type are used as Map keys or join keys directly.
	Hash  func(Ref) uint64
	Equal func(a, b Ref) bool

	// fieldByName is built lazily exactly once. A TypeInfo may be shared
	// by many registries (the master catalog hands the same registration
	// to every worker), so the index must not be rebuilt per Register.
	fieldOnce   sync.Once
	fieldByName map[string]*Field
}

// Field returns the field descriptor by name, or nil.
func (t *TypeInfo) Field(name string) *Field {
	t.fieldOnce.Do(func() {
		m := make(map[string]*Field, len(t.Fields))
		for i := range t.Fields {
			m[t.Fields[i].Name] = &t.Fields[i]
		}
		t.fieldByName = m
	})
	if f, ok := t.fieldByName[name]; ok {
		return f
	}
	return nil
}

// Method returns the method descriptor by name, or nil... callers that need
// a hard failure use MustMethod.
func (t *TypeInfo) Method(name string) (Method, bool) {
	m, ok := t.Methods[name]
	return m, ok
}

// IsSimple reports whether the type has no handle fields, i.e. a memmove
// suffices to copy it (the paper's "simple type" criterion).
func (t *TypeInfo) IsSimple() bool {
	for i := range t.Fields {
		if t.Fields[i].Kind.IsHandleKind() {
			return false
		}
	}
	return true
}

// HandleFields returns the subset of fields holding handles, in offset
// order; used by destructors and deep copies.
func (t *TypeInfo) HandleFields() []*Field {
	var out []*Field
	for i := range t.Fields {
		if t.Fields[i].Kind.IsHandleKind() {
			out = append(out, &t.Fields[i])
		}
	}
	return out
}

// Registry maps type codes to TypeInfo. Each process (in the simulated
// cluster: each worker) owns a Registry; unknown codes fault into the Miss
// hook, which the catalog layer uses to fetch registrations from the master
// — the analogue of shipping an .so to a worker that has never seen a type
// (paper §6.3).
type Registry struct {
	mu     sync.RWMutex
	byCode map[uint32]*TypeInfo
	byName map[string]*TypeInfo
	next   uint32

	// pins maps type names to the code persisted pages embed (set by
	// PinCode on restore); Register hands a pinned name its original
	// code so on-disk object headers keep resolving after a restart,
	// whatever order types re-register in.
	pins map[string]uint32

	// Miss, if set, is consulted when a lookup by code fails. It may
	// return a TypeInfo fetched from elsewhere (which is then cached)
	// or nil.
	Miss func(code uint32) *TypeInfo
}

// NewRegistry creates an empty registry whose user type codes start at
// FirstUserTypeCode.
func NewRegistry() *Registry {
	return &Registry{
		byCode: make(map[uint32]*TypeInfo),
		byName: make(map[string]*TypeInfo),
		pins:   make(map[string]uint32),
		next:   FirstUserTypeCode,
	}
}

// Register installs a TypeInfo. If ti.Code is zero a fresh code is assigned
// (honoring a PinCode binding for the name, if any). Registering a name
// twice returns the existing registration (idempotent, so every simulated
// process can register the same shared type set).
func (r *Registry) Register(ti *TypeInfo) (*TypeInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[ti.Name]; ok {
		return prev, nil
	}
	if ti.Code == 0 {
		if code, ok := r.pins[ti.Name]; ok {
			ti.Code = code
		} else {
			ti.Code = r.next
			r.next++
		}
	}
	if ti.Code >= r.next {
		r.next = ti.Code + 1
	}
	if _, dup := r.byCode[ti.Code]; dup {
		return nil, fmt.Errorf("object: duplicate type code %d", ti.Code)
	}
	r.byCode[ti.Code] = ti
	r.byName[ti.Name] = ti
	return ti, nil
}

// PinCode binds a type name to the code persisted pages embed, ahead of
// the type's re-registration (the restore path): when Register later sees
// the name, it assigns the pinned code instead of a fresh one, and fresh
// automatic assignments are kept clear of the pin.
func (r *Registry) PinCode(name string, code uint32) {
	r.mu.Lock()
	r.pins[name] = code
	if code >= r.next {
		r.next = code + 1
	}
	r.mu.Unlock()
}

// UserTypes lists the registered user types (codes at or above
// FirstUserTypeCode) sorted by code — the persistence manifest's view.
func (r *Registry) UserTypes() []*TypeInfo {
	r.mu.RLock()
	out := make([]*TypeInfo, 0, len(r.byCode))
	for code, ti := range r.byCode {
		if code >= FirstUserTypeCode {
			out = append(out, ti)
		}
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// Lookup resolves a type code, faulting into Miss for unknown codes.
func (r *Registry) Lookup(code uint32) *TypeInfo {
	r.mu.RLock()
	ti := r.byCode[code]
	r.mu.RUnlock()
	if ti != nil {
		return ti
	}
	if r.Miss == nil {
		return nil
	}
	fetched := r.Miss(code)
	if fetched == nil {
		return nil
	}
	cached, err := r.Register(fetched)
	if err != nil {
		return nil
	}
	return cached
}

// LookupName resolves a type by its registered name.
func (r *Registry) LookupName(name string) *TypeInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byName[name]
}

// Types returns all registered types sorted by code (for catalog listings).
func (r *Registry) Types() []*TypeInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*TypeInfo, 0, len(r.byCode))
	for _, ti := range r.byCode {
		out = append(out, ti)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// StructBuilder assembles a TypeInfo with automatically computed, aligned
// field offsets — the stand-in for the C++ compiler laying out an Object
// subclass.
type StructBuilder struct {
	name    string
	fields  []Field
	methods map[string]Method
	off     uint32
}

// NewStruct begins building a user type with the given name.
func NewStruct(name string) *StructBuilder {
	return &StructBuilder{name: name, methods: map[string]Method{}}
}

// AddField appends a field, aligning its offset to the kind's natural size
// (bools byte-aligned, 4-byte values 4-aligned, 8-byte values 8-aligned).
func (b *StructBuilder) AddField(name string, k Kind) *StructBuilder {
	align := k.Size()
	if align == 0 {
		panic("object: field with invalid kind " + k.String())
	}
	if align > 8 {
		align = 8
	}
	if rem := b.off % align; rem != 0 {
		b.off += align - rem
	}
	b.fields = append(b.fields, Field{Name: name, Kind: k, Off: b.off})
	b.off += k.Size()
	return b
}

// AddMethod registers a virtual method on the type being built.
func (b *StructBuilder) AddMethod(name string, ret Kind, fn func(Ref) Value) *StructBuilder {
	b.methods[name] = Method{Name: name, Ret: ret, Fn: fn}
	return b
}

// Build finalizes the layout (size rounded up to 8 bytes) and registers the
// type with the registry.
func (b *StructBuilder) Build(r *Registry) (*TypeInfo, error) {
	size := b.off
	if rem := size % 8; rem != 0 {
		size += 8 - rem
	}
	if size == 0 {
		size = 8
	}
	ti := &TypeInfo{Name: b.name, Size: size, Fields: b.fields, Methods: b.methods}
	return r.Register(ti)
}

// MustBuild is Build, panicking on error (registration of a fixed schema).
func (b *StructBuilder) MustBuild(r *Registry) *TypeInfo {
	ti, err := b.Build(r)
	if err != nil {
		panic(err)
	}
	return ti
}
