package object

import "errors"

// BuildPages is the client-side loading helper (the paper §3 pattern of
// makeObjectAllocatorBlock + makeObject + push_back): it fills pages with n
// objects built by fill, each page holding a root Vector<Handle>. When an
// object does not fit on the current page, a fresh page is started and the
// object is rebuilt there; any partial allocations from the failed attempt
// remain as unreferenced holes on the sealed page (region semantics).
func BuildPages(reg *Registry, pageSize, n int, fill func(a *Allocator, i int) (Ref, error)) ([]*Page, error) {
	var pages []*Page
	var p *Page
	var a *Allocator
	var root Vector

	fresh := func() error {
		p = NewPage(pageSize, reg)
		a = NewAllocator(p, PolicyLightweightReuse)
		v, err := MakeVector(a, KHandle, 0)
		if err != nil {
			return err
		}
		v.Retain()
		p.SetRoot(v.Off)
		root = v
		return nil
	}
	if err := fresh(); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		r, err := fill(a, i)
		if err == nil {
			err = root.PushBackHandle(a, r)
		}
		if errors.Is(err, ErrPageFull) {
			pages = append(pages, p)
			if err := fresh(); err != nil {
				return nil, err
			}
			r, err = fill(a, i)
			if err == nil {
				err = root.PushBackHandle(a, r)
			}
			if err != nil {
				return nil, err
			}
		} else if err != nil {
			return nil, err
		}
	}
	pages = append(pages, p)
	return pages, nil
}
