// Package object implements the PlinyCompute (PC) object model: a
// page-as-a-heap persistent object toolkit (paper §3, §6).
//
// All objects live in place on pages ([]byte arenas). References between
// objects are Handle slots holding a *relative offset* plus a type code, so
// a page can be written to disk or shipped across the (simulated) network as
// raw bytes with zero serialization cost: copying the page preserves every
// handle. This is the paper's "zero-cost data movement" principle.
//
// The model supports reference counting per managed allocation block, with
// per-object opt-outs (no-refcount, unique ownership) and per-computation
// allocator policies (lightweight reuse, no reuse, recycling) exactly as
// described in the paper's Appendix B.
package object

import "fmt"

// Kind identifies the primitive storage kind of a field, vector element, or
// map key/value inside a page. KString and KHandle occupy an 8-byte handle
// slot; KString merely documents that the pointee is a TCString object.
type Kind uint8

// Storage kinds. The set mirrors what the paper's C++ binding supports via
// the compiler-specified layout: scalar primitives, nested handles, and
// strings (which are themselves PC objects).
const (
	KInvalid Kind = iota
	KBool
	KInt32
	KInt64
	KFloat64
	KHandle
	KString
)

// Size returns the number of bytes the kind occupies inside an object
// payload, vector data array, or map slot.
func (k Kind) Size() uint32 {
	switch k {
	case KBool:
		return 1
	case KInt32:
		return 4
	case KInt64, KFloat64, KHandle, KString:
		return 8
	default:
		return 0
	}
}

// IsHandleKind reports whether values of this kind are stored as handle
// slots and therefore participate in reference counting and deep copies.
func (k Kind) IsHandleKind() bool { return k == KHandle || k == KString }

func (k Kind) String() string {
	switch k {
	case KBool:
		return "bool"
	case KInt32:
		return "int32"
	case KInt64:
		return "int64"
	case KFloat64:
		return "float64"
	case KHandle:
		return "handle"
	case KString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Built-in type codes. Codes below FirstUserTypeCode are reserved for the
// object model itself; catalog-registered user types start at
// FirstUserTypeCode. Codes with the SimpleTypeBit set denote "simple" types
// in the paper's sense (no handles, no virtual functions; a memmove suffices
// to copy them) and encode the object size in the low 31 bits.
const (
	TCNil    uint32 = 0
	TCArray  uint32 = 1 // raw element storage backing Vector and Map
	TCString uint32 = 2 // variable-length byte string
	TCVector uint32 = 3 // generic vector container
	TCMap    uint32 = 4 // generic hash map container
	TCRaw    uint32 = 5 // uninterpreted blob

	// FirstUserTypeCode is the first code the catalog hands out to
	// registered user types (paper §6.3's registered Object descendants).
	FirstUserTypeCode uint32 = 1000

	// SimpleTypeBit marks a type code as a "simple" (memmove-copyable)
	// type whose size is encoded in the remaining bits (paper §6.3).
	SimpleTypeBit uint32 = 1 << 31
)

// SimpleCode builds the type code for a simple (flat, handle-free) type of
// the given payload size.
func SimpleCode(size uint32) uint32 { return SimpleTypeBit | (size &^ SimpleTypeBit) }

// IsSimpleCode reports whether tc denotes a simple type.
func IsSimpleCode(tc uint32) bool { return tc&SimpleTypeBit != 0 }

// SimpleSize extracts the object size encoded in a simple type code.
func SimpleSize(tc uint32) uint32 { return tc &^ SimpleTypeBit }
