package object

import "testing"

func TestPageReset(t *testing.T) {
	reg := NewRegistry()
	p := NewPage(4096, reg)
	a := NewAllocator(p, PolicyLightweightReuse)
	s, err := MakeString(a, "scrap")
	if err != nil {
		t.Fatal(err)
	}
	p.SetRoot(s.Off)
	p.SetManaged(false)

	p.Reset()
	if p.Used() != PageHeaderSize {
		t.Errorf("Used after reset = %d", p.Used())
	}
	if p.ActiveObjects() != 0 || p.Root() != 0 || !p.Managed() || p.Dirty {
		t.Error("reset did not restore a pristine header")
	}
	// The page must be immediately reusable as an allocation block.
	a2 := NewAllocator(p, PolicyLightweightReuse)
	s2, err := MakeString(a2, "fresh")
	if err != nil {
		t.Fatal(err)
	}
	if StringContents(s2) != "fresh" {
		t.Error("reset page produced corrupted allocation")
	}
}

func TestPagePoolRecyclesWithoutDataBleed(t *testing.T) {
	reg := NewRegistry()
	pool := NewPagePool(8192)

	// Fill a page with recognizable content, return it, get it back, and
	// check that fresh allocations are properly zeroed even though the
	// body was not cleared.
	p1 := pool.Get(reg)
	a := NewAllocator(p1, PolicyLightweightReuse)
	v, err := MakeVector(a, KFloat64, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		_ = v.PushBackF64(a, 12345.678)
	}
	pool.Put(p1)

	p2 := pool.Get(reg)
	if pool.Reuses() != 1 {
		t.Fatalf("Reuses = %d, want 1", pool.Reuses())
	}
	a2 := NewAllocator(p2, PolicyLightweightReuse)
	v2, err := MakeVector(a2, KFloat64, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		_ = v2.PushBackF64(a2, 0)
	}
	for i := 0; i < 8; i++ {
		if v2.F64At(i) != 0 {
			t.Fatalf("stale data bled into recycled allocation: %g", v2.F64At(i))
		}
	}
	// Shipping a recycled page only moves the occupied prefix, so stale
	// tail bytes never escape.
	if int(p2.Used()) >= len(p2.Data) {
		t.Error("recycled page should not be full")
	}
}

func TestPagePoolDropsWrongSizes(t *testing.T) {
	pool := NewPagePool(4096)
	pool.Put(NewPage(8192, NewRegistry())) // wrong size: dropped
	p := pool.Get(NewRegistry())
	if len(p.Data) != 4096 {
		t.Errorf("pool returned %d-byte page, want 4096", len(p.Data))
	}
	pool.Put(nil) // must not panic
}

func TestF64Span(t *testing.T) {
	reg := NewRegistry()
	p := NewPage(8192, reg)
	a := NewAllocator(p, PolicyLightweightReuse)
	v, err := MakeVector(a, KFloat64, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		_ = v.PushBackF64(a, float64(i))
	}
	sp := v.F64Span()
	if sp.Len() != 64 {
		t.Fatalf("span len = %d", sp.Len())
	}
	if sp.At(10) != 10 {
		t.Errorf("At(10) = %g", sp.At(10))
	}
	sp.Set(10, 99)
	sp.Add(10, 1)
	if v.F64At(10) != 100 {
		t.Errorf("after Set+Add, elem = %g, want 100", v.F64At(10))
	}
	dst := make([]float64, 64)
	sp.CopyTo(dst)
	if dst[63] != 63 || dst[10] != 100 {
		t.Error("CopyTo wrong")
	}
	empty, _ := MakeVector(a, KFloat64, 0)
	if empty.F64Span().Len() != 0 {
		t.Error("empty vector span should have length 0")
	}
}

func TestSimpleTypeCodes(t *testing.T) {
	tc := SimpleCode(48)
	if !IsSimpleCode(tc) {
		t.Error("SimpleCode should set the simple bit")
	}
	if SimpleSize(tc) != 48 {
		t.Errorf("SimpleSize = %d", SimpleSize(tc))
	}
	if IsSimpleCode(TCVector) || IsSimpleCode(FirstUserTypeCode) {
		t.Error("builtin/user codes must not read as simple")
	}
	// A simple-typed object deep-copies as a flat byte copy.
	reg := NewRegistry()
	p := NewPage(4096, reg)
	a := NewAllocator(p, PolicyLightweightReuse)
	off, err := a.Alloc(16, SimpleCode(16), FullRefCount)
	if err != nil {
		t.Fatal(err)
	}
	r := Ref{Page: p, Off: off}
	copy(r.Payload(), "0123456789abcdef")
	p2 := NewPage(4096, reg)
	a2 := NewAllocator(p2, PolicyLightweightReuse)
	cp, err := DeepCopy(a2, r)
	if err != nil {
		t.Fatal(err)
	}
	if string(cp.Payload()) != "0123456789abcdef" {
		t.Error("simple type flat copy lost data")
	}
}

func TestHandleSlotTypeCode(t *testing.T) {
	reg := NewRegistry()
	ti := NewStruct("T").AddField("child", KHandle).MustBuild(reg)
	p := NewPage(4096, reg)
	a := NewAllocator(p, PolicyLightweightReuse)
	parent, _ := a.MakeObject(ti)
	child, _ := MakeString(a, "x")
	if err := SetHandleField(a, parent, ti.Field("child"), child); err != nil {
		t.Fatal(err)
	}
	// The slot carries the pointee's type code without dereferencing —
	// the dispatch-before-touch capability of §6.3.
	if got := HandleSlotTypeCode(p, parent.Off+ti.Field("child").Off); got != TCString {
		t.Errorf("slot type code = %d, want TCString", got)
	}
}

func TestBuildPagesRotation(t *testing.T) {
	reg := NewRegistry()
	ti := NewStruct("Fat").AddField("pad", KHandle).MustBuild(reg)
	pages, err := BuildPages(reg, 2048, 200, func(a *Allocator, i int) (Ref, error) {
		r, err := a.MakeObject(ti)
		if err != nil {
			return NilRef, err
		}
		v, err := MakeVector(a, KFloat64, 8)
		if err != nil {
			return NilRef, err
		}
		for j := 0; j < 8; j++ {
			if err := v.PushBackF64(a, float64(i)); err != nil {
				return NilRef, err
			}
		}
		return r, SetHandleField(a, r, ti.Field("pad"), v.Ref)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) < 2 {
		t.Fatalf("expected rotation across pages, got %d", len(pages))
	}
	total := 0
	for _, p := range pages {
		root := AsVector(Ref{Page: p, Off: p.Root()})
		total += root.Len()
	}
	if total != 200 {
		t.Errorf("objects across pages = %d, want 200", total)
	}
}
