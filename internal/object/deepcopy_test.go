package object

import "testing"

// buildEmployeeType registers a small nested schema used across deep-copy
// tests: Emp{name string, salary float64, dept handle->Dep{deptName string}}.
func buildEmployeeType(reg *Registry) (emp, dep *TypeInfo) {
	dep = NewStruct("Dep").
		AddField("deptName", KString).
		MustBuild(reg)
	emp = NewStruct("Emp").
		AddField("name", KString).
		AddField("salary", KFloat64).
		AddField("dept", KHandle).
		MustBuild(reg)
	return emp, dep
}

func makeEmp(t testing.TB, a *Allocator, emp, dep *TypeInfo, name string, salary float64, deptName string) Ref {
	t.Helper()
	d, err := a.MakeObject(dep)
	if err != nil {
		t.Fatal(err)
	}
	if err := SetStrField(a, d, dep.Field("deptName"), deptName); err != nil {
		t.Fatal(err)
	}
	e, err := a.MakeObject(emp)
	if err != nil {
		t.Fatal(err)
	}
	if err := SetStrField(a, e, emp.Field("name"), name); err != nil {
		t.Fatal(err)
	}
	SetF64(e, emp.Field("salary"), salary)
	if err := SetHandleField(a, e, emp.Field("dept"), d); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestDeepCopyNestedObject(t *testing.T) {
	reg := NewRegistry()
	emp, dep := buildEmployeeType(reg)
	p1 := NewPage(1<<16, reg)
	a1 := NewAllocator(p1, PolicyLightweightReuse)
	src := makeEmp(t, a1, emp, dep, "alice", 90000, "engineering")

	p2 := NewPage(1<<16, reg)
	a2 := NewAllocator(p2, PolicyLightweightReuse)
	dst, err := DeepCopy(a2, src)
	if err != nil {
		t.Fatal(err)
	}
	if dst.Page != p2 {
		t.Fatal("copy must land on the destination page")
	}
	if !Equal(src, dst) {
		t.Error("deep copy is not structurally equal to source")
	}
	if GetStrField(dst, emp.Field("name")) != "alice" {
		t.Error("string field lost in copy")
	}
	dd := GetHandleField(dst, emp.Field("dept"))
	if dd.Page != p2 {
		t.Error("nested object must also land on the destination page")
	}
	if GetStrField(dd, dep.Field("deptName")) != "engineering" {
		t.Error("nested string lost in copy")
	}
}

func TestDeepCopyPreservesSharing(t *testing.T) {
	reg := NewRegistry()
	emp, dep := buildEmployeeType(reg)
	p1 := NewPage(1<<16, reg)
	a1 := NewAllocator(p1, PolicyLightweightReuse)

	d, _ := a1.MakeObject(dep)
	_ = SetStrField(a1, d, dep.Field("deptName"), "shared")
	e1, _ := a1.MakeObject(emp)
	e2, _ := a1.MakeObject(emp)
	_ = SetHandleField(a1, e1, emp.Field("dept"), d)
	_ = SetHandleField(a1, e2, emp.Field("dept"), d)
	v, _ := MakeVector(a1, KHandle, 2)
	_ = v.PushBackHandle(a1, e1)
	_ = v.PushBackHandle(a1, e2)

	p2 := NewPage(1<<16, reg)
	a2 := NewAllocator(p2, PolicyLightweightReuse)
	cv, err := DeepCopy(a2, v.Ref)
	if err != nil {
		t.Fatal(err)
	}
	cvec := AsVector(cv)
	c1 := GetHandleField(cvec.HandleAt(0), emp.Field("dept"))
	c2 := GetHandleField(cvec.HandleAt(1), emp.Field("dept"))
	if c1 != c2 {
		t.Error("shared child must be copied once (memoized), not duplicated")
	}
}

func TestCrossBlockAssignmentTriggersDeepCopy(t *testing.T) {
	// The paper's §6.4 example: data allocated in block 1 assigned into an
	// object on block 2 must be deep-copied to block 2 automatically.
	reg := NewRegistry()
	mb := NewStruct("MatrixBlock").
		AddField("chunkRow", KInt32).
		AddField("chunkCol", KInt32).
		AddField("value", KHandle).
		MustBuild(reg)

	p1 := NewPage(1<<16, reg)
	a1 := NewAllocator(p1, PolicyLightweightReuse)
	data, err := MakeVector(a1, KFloat64, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		_ = data.PushBackF64(a1, float64(i))
	}

	p2 := NewPage(1<<16, reg)
	a2 := NewAllocator(p2, PolicyLightweightReuse)
	myMatrix, err := a2.MakeObject(mb)
	if err != nil {
		t.Fatal(err)
	}
	if err := SetHandleField(a2, myMatrix, mb.Field("value"), data.Ref); err != nil {
		t.Fatal(err)
	}
	got := GetHandleField(myMatrix, mb.Field("value"))
	if got.Page != p2 {
		t.Fatal("cross-block assignment must deep-copy onto the active block")
	}
	gv := AsVector(got)
	if gv.Len() != 100 || gv.F64At(42) != 42 {
		t.Error("copied vector contents are wrong")
	}
	if a2.Stats.DeepCopies == 0 {
		t.Error("deep copy stat not recorded")
	}
}

func TestCrossPageAssignmentOutsideActiveBlockFails(t *testing.T) {
	reg := NewRegistry()
	emp, dep := buildEmployeeType(reg)
	p1 := NewPage(1<<16, reg)
	a1 := NewAllocator(p1, PolicyLightweightReuse)
	e := makeEmp(t, a1, emp, dep, "bob", 1, "x")

	p2 := NewPage(1<<16, reg)
	a2 := NewAllocator(p2, PolicyLightweightReuse)
	d2, _ := a2.MakeObject(dep)

	// a1's active block is p1; writing a p2 target into an object on p1
	// with allocator a2 (whose block is p2, not p1) must fail.
	if err := SetHandleField(a2, e, emp.Field("dept"), d2); err != ErrCrossPage {
		t.Errorf("expected ErrCrossPage, got %v", err)
	}
}

func TestDeepCopiedGraphShipsIndependently(t *testing.T) {
	// End-to-end zero-cost movement of a complex graph: build, deep copy
	// to a fresh page, ship the bytes, verify structure.
	reg := NewRegistry()
	emp, dep := buildEmployeeType(reg)
	p1 := NewPage(1<<18, reg)
	a1 := NewAllocator(p1, PolicyLightweightReuse)
	v, _ := MakeVector(a1, KHandle, 0)
	for i := 0; i < 25; i++ {
		e := makeEmp(t, a1, emp, dep, "emp", float64(i)*1000, "dept")
		_ = v.PushBackHandle(a1, e)
	}

	p2 := NewPage(1<<18, reg)
	a2 := NewAllocator(p2, PolicyLightweightReuse)
	cp, err := DeepCopy(a2, v.Ref)
	if err != nil {
		t.Fatal(err)
	}
	p2.SetRoot(cp.Off)
	shipped := make([]byte, len(p2.Bytes()))
	copy(shipped, p2.Bytes())
	q, err := FromBytes(shipped, reg)
	if err != nil {
		t.Fatal(err)
	}
	rv := AsVector(Ref{Page: q, Off: q.Root()})
	if rv.Len() != 25 {
		t.Fatalf("shipped vector len = %d", rv.Len())
	}
	for i := 0; i < 25; i++ {
		e := rv.HandleAt(i)
		if GetF64(e, emp.Field("salary")) != float64(i)*1000 {
			t.Fatalf("shipped emp %d salary wrong", i)
		}
		if GetStrField(GetHandleField(e, emp.Field("dept")), dep.Field("deptName")) != "dept" {
			t.Fatalf("shipped emp %d dept wrong", i)
		}
	}
}

func TestEqualDetectsDifference(t *testing.T) {
	reg := NewRegistry()
	emp, dep := buildEmployeeType(reg)
	p := NewPage(1<<16, reg)
	a := NewAllocator(p, PolicyLightweightReuse)
	e1 := makeEmp(t, a, emp, dep, "a", 1, "d1")
	e2 := makeEmp(t, a, emp, dep, "a", 1, "d2")
	e3 := makeEmp(t, a, emp, dep, "a", 2, "d1")
	if Equal(e1, e2) {
		t.Error("different nested strings should not be Equal")
	}
	if Equal(e1, e3) {
		t.Error("different scalars should not be Equal")
	}
}
