package tcap

import (
	"fmt"
	"strings"
)

// Print renders the program in the paper's textual TCAP syntax:
//
//	WDNm_1(dep,emp,sup,nm1) <= APPLY(In(dep), In(dep,emp,sup), 'Join_2212',
//	    'att_acc_1', [('type', 'attAccess'), ('attName', 'deptName')]);
func (p *Program) Print() string {
	var b strings.Builder
	for _, s := range p.Stmts {
		b.WriteString(s.Print())
		b.WriteString("\n")
	}
	return b.String()
}

// Print renders one statement.
func (s *Stmt) Print() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s <= %s(", s.Out, s.Op)
	switch s.Op {
	case OpScan:
		fmt.Fprintf(&b, "'%s', '%s', '%s'", s.Db, s.Set, s.Comp)
	case OpOutput:
		fmt.Fprintf(&b, "%s, '%s', '%s', '%s'", s.Applied, s.Db, s.Set, s.Comp)
	case OpJoin:
		fmt.Fprintf(&b, "%s, %s, %s, %s, '%s'", s.Applied, s.Copied, s.Applied2, s.Copied2, s.Comp)
	default:
		fmt.Fprintf(&b, "%s, %s, '%s'", s.Applied, s.Copied, s.Comp)
	}
	if s.Stage != "" {
		fmt.Fprintf(&b, ", '%s'", s.Stage)
	}
	b.WriteString(", [")
	for i, k := range s.InfoKeysSorted() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "('%s', '%s')", k, s.Info[k])
	}
	b.WriteString("]);")
	return b.String()
}
