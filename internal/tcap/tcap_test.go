package tcap

import (
	"strings"
	"testing"
)

// paperSection52 is the four-statement TCAP program from paper §5.2
// (Figure 1's pipeline), transcribed in our accepted syntax.
const paperSection52 = `
In(dep,emp,sup) <= SCAN('db', 'threeway', 'Join_2212', []);
WDNm_1(dep,emp,sup,nm1) <= APPLY(In(dep), In(dep,emp,sup), 'Join_2212', 'att_acc_1', [('attName', 'deptName'), ('type', 'attAccess')]);
WDNm_2(dep,emp,sup,nm1,nm2) <= APPLY(WDNm_1(emp), WDNm_1(dep,emp,sup,nm1), 'Join_2212', 'method_call_2', [('methodName', 'getDeptName'), ('type', 'methodCall')]);
WBl_1(dep,emp,sup,bl) <= APPLY(WDNm_2(nm1,nm2), WDNm_2(dep,emp,sup), 'Join_2212', '==_3', [('type', 'equalityCheck')]);
Flt_1(dep,emp,sup) <= FILTER(WBl_1(bl), WBl_1(dep,emp,sup), 'Join_2212', []);
`

func TestParsePaperExample(t *testing.T) {
	prog, err := Parse(paperSection52)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) != 5 {
		t.Fatalf("stmt count = %d, want 5", len(prog.Stmts))
	}
	apply := prog.Stmts[1]
	if apply.Op != OpApply || apply.Comp != "Join_2212" || apply.Stage != "att_acc_1" {
		t.Errorf("apply parsed wrong: %+v", apply)
	}
	if apply.Info["type"] != "attAccess" || apply.Info["attName"] != "deptName" {
		t.Errorf("apply info = %v", apply.Info)
	}
	if got := apply.NewColumns(); len(got) != 1 || got[0] != "nm1" {
		t.Errorf("NewColumns = %v, want [nm1]", got)
	}
	flt := prog.Stmts[4]
	if flt.Op != OpFilter || len(flt.NewColumns()) != 0 {
		t.Errorf("filter parsed wrong: %+v", flt)
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	prog, err := Parse(paperSection52)
	if err != nil {
		t.Fatal(err)
	}
	text := prog.Print()
	prog2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse of printed program failed: %v\n%s", err, text)
	}
	if prog2.Print() != text {
		t.Errorf("print/parse/print not a fixpoint:\n--- first\n%s\n--- second\n%s", text, prog2.Print())
	}
}

func TestParseJoinStatement(t *testing.T) {
	src := `
L(sup) <= SCAN('db', 'sups', 'Join_42', []);
R(emp) <= SCAN('db', 'emps', 'Join_42', []);
JK2_1(sup,mt1) <= APPLY(L(sup), L(sup), 'Join_42', 'att_access_1', [('attName', 'name'), ('type', 'attAccess')]);
JK2_2(sup,hash1) <= HASH(JK2_1(mt1), JK2_1(sup), 'Join_42', 'hash_l', []);
JK2_3(emp,mt2) <= APPLY(R(emp), R(emp), 'Join_42', 'method_call_1', [('methodName', 'getSupervisor'), ('type', 'methodCall')]);
JK2_4(emp,hash2) <= HASH(JK2_3(mt2), JK2_3(emp), 'Join_42', 'hash_r', []);
JK2_5(sup,emp) <= JOIN(JK2_2(hash1), JK2_2(sup), JK2_4(hash2), JK2_4(emp), 'Join_42', []);
OUT() <= OUTPUT(JK2_5(sup,emp), 'db', 'result', 'Join_42', []);
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	join := prog.Producer("JK2_5")
	if join == nil || join.Op != OpJoin {
		t.Fatal("JOIN statement missing")
	}
	if join.Applied.Name != "JK2_2" || join.Applied2.Name != "JK2_4" {
		t.Errorf("join inputs: %s / %s", join.Applied.Name, join.Applied2.Name)
	}
	if len(join.Out.Cols) != 2 {
		t.Errorf("join output cols = %v", join.Out.Cols)
	}
	// Round trip.
	if _, err := Parse(prog.Print()); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}

func TestValidateCatchesUndefinedInput(t *testing.T) {
	_, err := Parse(`X(a) <= APPLY(Ghost(a), Ghost(a), 'C', 's', []);`)
	if err == nil || !strings.Contains(err.Error(), "not yet produced") {
		t.Errorf("expected undefined-input error, got %v", err)
	}
}

func TestValidateCatchesUnknownColumn(t *testing.T) {
	_, err := Parse(`
In(a) <= SCAN('db', 's', 'C', []);
X(a,b) <= APPLY(In(zzz), In(a), 'C', 's', []);
`)
	if err == nil || !strings.Contains(err.Error(), "column") {
		t.Errorf("expected unknown-column error, got %v", err)
	}
}

func TestValidateCatchesDuplicateOutput(t *testing.T) {
	_, err := Parse(`
In(a) <= SCAN('db', 's', 'C', []);
In(b) <= SCAN('db', 's2', 'C', []);
`)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("expected duplicate error, got %v", err)
	}
}

func TestConsumersAndAncestors(t *testing.T) {
	prog, err := Parse(paperSection52)
	if err != nil {
		t.Fatal(err)
	}
	cons := prog.Consumers("WDNm_1")
	if len(cons) != 1 || cons[0].Out.Name != "WDNm_2" {
		t.Errorf("Consumers(WDNm_1) = %v", cons)
	}
	scan := prog.Producer("In")
	flt := prog.Producer("Flt_1")
	if !prog.IsAncestor(scan, flt) {
		t.Error("SCAN should be an ancestor of the FILTER")
	}
	if prog.IsAncestor(flt, scan) {
		t.Error("FILTER is not an ancestor of SCAN")
	}
	if prog.IsAncestor(flt, flt) {
		t.Error("a statement is not its own ancestor")
	}
}

func TestSinks(t *testing.T) {
	prog, _ := Parse(paperSection52)
	sinks := prog.Sinks()
	if len(sinks) != 1 || sinks[0].Out.Name != "Flt_1" {
		t.Errorf("Sinks = %v", sinks)
	}
}

func TestParseComments(t *testing.T) {
	src := `
/* additional code here to check whether getSupervisor == name */
In(a) <= SCAN('db', 's', 'C', []);
`
	prog, err := Parse(src)
	if err != nil || len(prog.Stmts) != 1 {
		t.Errorf("comment handling: %v (%d stmts)", err, len(prog.Stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`X(a) <= BOGUS(In(a), In(a), 'C', []);`,
		`X(a) <= APPLY(In(a)`,
		`X(a) := APPLY(In(a), In(a), 'C', []);`,
		`X(a) <= APPLY(In(a), In(a), 'C', [('k','v']);`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}
