package tcap

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a TCAP program in the textual syntax emitted by Print (the
// paper's notation). It accepts the statement forms:
//
//	Out(c1,c2) <= SCAN('db', 'set', 'Comp', [..]);
//	Out(c...)  <= APPLY(In(a), In(b,c), 'Comp', 'stage', [..]);   (also HASH, FLATTEN)
//	Out(c...)  <= FILTER(In(bl), In(b,c), 'Comp', [..]);
//	Out(c...)  <= JOIN(L(h), L(a), R(h2), R(b), 'Comp', [..]);
//	Out(k,v)   <= AGGREGATE(In(k,v), In(), 'Comp', [..]);
//	Out(c...)  <= SORT(In(k1,k2), In(b,c), 'Comp', [..]);        (also DISTINCT, WINDOW)
//	Out()      <= OUTPUT(In(a), 'db', 'set', 'Comp', [..]);
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.done() {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, s)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

type token struct {
	kind string // ident, str, punct
	val  string
	pos  int
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("tcap: unterminated comment at %d", i)
			}
			i += end + 4
		case c == '\'':
			j := i + 1
			for j < len(src) && src[j] != '\'' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("tcap: unterminated string at %d", i)
			}
			toks = append(toks, token{"str", src[i+1 : j], i})
			i = j + 1
		case c == '<' && i+1 < len(src) && src[i+1] == '=':
			toks = append(toks, token{"punct", "<=", i})
			i += 2
		case strings.ContainsRune("(),[];", rune(c)):
			toks = append(toks, token{"punct", string(c), i})
			i++
		case unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_' || c == '.':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_' || src[j] == '.') {
				j++
			}
			toks = append(toks, token{"ident", src[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("tcap: unexpected character %q at %d", c, i)
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) done() bool { return p.i >= len(p.toks) }

func (p *parser) peek() token {
	if p.done() {
		return token{kind: "eof"}
	}
	return p.toks[p.i]
}

func (p *parser) next() token {
	t := p.peek()
	p.i++
	return t
}

func (p *parser) expect(kind, val string) (token, error) {
	t := p.next()
	if t.kind != kind || (val != "" && t.val != val) {
		return t, fmt.Errorf("tcap: at %d expected %s %q, got %s %q", t.pos, kind, val, t.kind, t.val)
	}
	return t, nil
}

// colsRef parses Name(c1,c2,...).
func (p *parser) colsRef() (ColumnsRef, error) {
	name, err := p.expect("ident", "")
	if err != nil {
		return ColumnsRef{}, err
	}
	if _, err := p.expect("punct", "("); err != nil {
		return ColumnsRef{}, err
	}
	ref := ColumnsRef{Name: name.val}
	for p.peek().val != ")" {
		c, err := p.expect("ident", "")
		if err != nil {
			return ColumnsRef{}, err
		}
		ref.Cols = append(ref.Cols, c.val)
		if p.peek().val == "," {
			p.next()
		}
	}
	p.next() // ')'
	return ref, nil
}

func (p *parser) str() (string, error) {
	t, err := p.expect("str", "")
	return t.val, err
}

func (p *parser) comma() error {
	_, err := p.expect("punct", ",")
	return err
}

// info parses [('k','v'), ...].
func (p *parser) info() (map[string]string, error) {
	if _, err := p.expect("punct", "["); err != nil {
		return nil, err
	}
	out := map[string]string{}
	for p.peek().val != "]" {
		if _, err := p.expect("punct", "("); err != nil {
			return nil, err
		}
		k, err := p.str()
		if err != nil {
			return nil, err
		}
		if err := p.comma(); err != nil {
			return nil, err
		}
		v, err := p.str()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("punct", ")"); err != nil {
			return nil, err
		}
		out[k] = v
		if p.peek().val == "," {
			p.next()
		}
	}
	p.next() // ']'
	return out, nil
}

// optStageThenInfo parses an optional 'stage' string followed by the info
// list (the paper sometimes omits the stage for FILTER).
func (p *parser) optStageThenInfo(s *Stmt) error {
	if p.peek().kind == "str" {
		stage, _ := p.str()
		s.Stage = stage
		if err := p.comma(); err != nil {
			return err
		}
	}
	info, err := p.info()
	if err != nil {
		return err
	}
	s.Info = info
	return nil
}

func (p *parser) stmt() (*Stmt, error) {
	out, err := p.colsRef()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("punct", "<="); err != nil {
		return nil, err
	}
	opTok, err := p.expect("ident", "")
	if err != nil {
		return nil, err
	}
	s := &Stmt{Out: out, Info: map[string]string{}}
	switch opTok.val {
	case "SCAN":
		s.Op = OpScan
	case "APPLY":
		s.Op = OpApply
	case "FILTER":
		s.Op = OpFilter
	case "HASH":
		s.Op = OpHash
	case "JOIN":
		s.Op = OpJoin
	case "AGGREGATE":
		s.Op = OpAggregate
	case "FLATTEN":
		s.Op = OpFlatten
	case "OUTPUT":
		s.Op = OpOutput
	case "SORT":
		s.Op = OpSort
	case "DISTINCT":
		s.Op = OpDistinct
	case "WINDOW":
		s.Op = OpWindow
	default:
		return nil, fmt.Errorf("tcap: unknown op %q at %d", opTok.val, opTok.pos)
	}
	if _, err := p.expect("punct", "("); err != nil {
		return nil, err
	}

	switch s.Op {
	case OpScan:
		if s.Db, err = p.str(); err != nil {
			return nil, err
		}
		if err := p.comma(); err != nil {
			return nil, err
		}
		if s.Set, err = p.str(); err != nil {
			return nil, err
		}
		if err := p.comma(); err != nil {
			return nil, err
		}
		if s.Comp, err = p.str(); err != nil {
			return nil, err
		}
		if err := p.comma(); err != nil {
			return nil, err
		}
		if err := p.optStageThenInfo(s); err != nil {
			return nil, err
		}
	case OpOutput:
		if s.Applied, err = p.colsRef(); err != nil {
			return nil, err
		}
		if err := p.comma(); err != nil {
			return nil, err
		}
		if s.Db, err = p.str(); err != nil {
			return nil, err
		}
		if err := p.comma(); err != nil {
			return nil, err
		}
		if s.Set, err = p.str(); err != nil {
			return nil, err
		}
		if err := p.comma(); err != nil {
			return nil, err
		}
		if s.Comp, err = p.str(); err != nil {
			return nil, err
		}
		if err := p.comma(); err != nil {
			return nil, err
		}
		if err := p.optStageThenInfo(s); err != nil {
			return nil, err
		}
	case OpJoin:
		if s.Applied, err = p.colsRef(); err != nil {
			return nil, err
		}
		if err := p.comma(); err != nil {
			return nil, err
		}
		if s.Copied, err = p.colsRef(); err != nil {
			return nil, err
		}
		if err := p.comma(); err != nil {
			return nil, err
		}
		if s.Applied2, err = p.colsRef(); err != nil {
			return nil, err
		}
		if err := p.comma(); err != nil {
			return nil, err
		}
		if s.Copied2, err = p.colsRef(); err != nil {
			return nil, err
		}
		if err := p.comma(); err != nil {
			return nil, err
		}
		if s.Comp, err = p.str(); err != nil {
			return nil, err
		}
		if err := p.comma(); err != nil {
			return nil, err
		}
		if err := p.optStageThenInfo(s); err != nil {
			return nil, err
		}
	default: // APPLY, FILTER, HASH, FLATTEN, AGGREGATE
		if s.Applied, err = p.colsRef(); err != nil {
			return nil, err
		}
		if err := p.comma(); err != nil {
			return nil, err
		}
		if s.Copied, err = p.colsRef(); err != nil {
			return nil, err
		}
		if err := p.comma(); err != nil {
			return nil, err
		}
		if s.Comp, err = p.str(); err != nil {
			return nil, err
		}
		if err := p.comma(); err != nil {
			return nil, err
		}
		if err := p.optStageThenInfo(s); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect("punct", ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect("punct", ";"); err != nil {
		return nil, err
	}
	return s, nil
}
