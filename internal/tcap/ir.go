// Package tcap defines TCAP, PC's functional domain-specific intermediate
// language (paper §5.2). A TCAP program is a DAG of statements; each
// statement consumes a named *vector list* (a tuple of named columns of PC
// objects or scalars), applies one atomic operation, and produces a new
// named vector list. Because every operation carries a key-value metadata
// map describing what it was compiled from, TCAP is optimizable with
// relational-style rules (package optimizer) before physical planning
// (package physical).
package tcap

import (
	"fmt"
	"sort"
	"strings"
)

// OpKind enumerates TCAP's atomic operations.
type OpKind int

// TCAP operations. SCAN and OUTPUT anchor the DAG at stored sets; APPLY,
// FILTER, HASH, JOIN, AGGREGATE and FLATTEN are the paper's operator set
// (FLATTEN backs MultiSelectionComp's set-valued projection).
const (
	OpScan OpKind = iota
	OpApply
	OpFilter
	OpHash
	OpJoin
	OpAggregate
	OpFlatten
	OpOutput
	// OpSort orders a vector list on one or more key columns (Applied
	// names the key columns in precedence order; Info carries per-key
	// directions and an optional top-k limit). Distributed execution is a
	// merge network over the exchange: per-thread sorted runs merge into
	// one run per worker, and the consumer merges the workers' runs.
	OpSort
	// OpDistinct deduplicates on a key column, riding the aggregation
	// path as a keys-only sink (Applied names the key column).
	OpDistinct
	// OpWindow computes a running aggregate over the globally sorted
	// stream produced by a sort merge (Applied names the sort-key columns
	// followed by the value column; Info carries directions and the
	// window spec name).
	OpWindow
)

func (k OpKind) String() string {
	switch k {
	case OpScan:
		return "SCAN"
	case OpApply:
		return "APPLY"
	case OpFilter:
		return "FILTER"
	case OpHash:
		return "HASH"
	case OpJoin:
		return "JOIN"
	case OpAggregate:
		return "AGGREGATE"
	case OpFlatten:
		return "FLATTEN"
	case OpOutput:
		return "OUTPUT"
	case OpSort:
		return "SORT"
	case OpDistinct:
		return "DISTINCT"
	case OpWindow:
		return "WINDOW"
	default:
		return fmt.Sprintf("OP(%d)", int(k))
	}
}

// ColumnsRef names a vector list and a subset of its columns, e.g.
// "WDNm_1(dep,emp,sup,nm1)".
type ColumnsRef struct {
	Name string
	Cols []string
}

func (c ColumnsRef) String() string {
	return c.Name + "(" + strings.Join(c.Cols, ",") + ")"
}

// Has reports whether the reference includes column col.
func (c ColumnsRef) Has(col string) bool {
	for _, x := range c.Cols {
		if x == col {
			return true
		}
	}
	return false
}

// Stmt is one TCAP statement:
//
//	Out(cols) <= OP(Applied, Copied, 'Comp', 'Stage', [(k,v),...]);
//
// Applied names the input columns the operation consumes; Copied names the
// input columns shallow-copied to the output. For APPLY/HASH/FLATTEN the
// output's final column(s) are newly produced. JOIN takes a second pair
// (Applied2, Copied2) for its right input. SCAN and OUTPUT carry Db/Set.
type Stmt struct {
	Out     ColumnsRef
	Op      OpKind
	Applied ColumnsRef
	Copied  ColumnsRef

	// Applied2/Copied2 are used only by OpJoin (the right input).
	Applied2 ColumnsRef
	Copied2  ColumnsRef

	// Comp is the Computation the statement was compiled from
	// (e.g. "Join_2212"); Stage names the compiled pipeline stage
	// (e.g. "att_acc_1"). The pair keys the executor's kernel registry.
	Comp  string
	Stage string

	// Db/Set anchor SCAN and OUTPUT statements at stored sets.
	Db, Set string

	// Info is the operation's key-value metadata — informational for
	// execution, vital for optimization (paper §5.2).
	Info map[string]string

	// FuseGroup marks this statement as a member of a fused kernel run:
	// consecutive statements sharing the same nonzero group execute as a
	// single pass over each batch (package optimizer assigns groups,
	// package engine executes them). Zero — the default, and what Parse
	// produces — means unfused; the annotation is advisory, so an engine
	// that ignores it computes the same result one statement at a time.
	FuseGroup int
}

// InputName returns the (left) input vector list name, or "" for SCAN.
func (s *Stmt) InputName() string {
	if s.Op == OpScan {
		return ""
	}
	return s.Applied.Name
}

// NewColumns returns the names of columns the statement creates (columns in
// Out not copied from an input).
func (s *Stmt) NewColumns() []string {
	copied := map[string]bool{}
	for _, c := range s.Copied.Cols {
		copied[c] = true
	}
	for _, c := range s.Copied2.Cols {
		copied[c] = true
	}
	var out []string
	for _, c := range s.Out.Cols {
		if !copied[c] {
			out = append(out, c)
		}
	}
	return out
}

// InfoKeysSorted returns metadata keys in deterministic order (printing).
func (s *Stmt) InfoKeysSorted() []string {
	keys := make([]string, 0, len(s.Info))
	for k := range s.Info {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Clone returns a deep copy of the statement.
func (s *Stmt) Clone() *Stmt {
	c := *s
	c.Out.Cols = append([]string(nil), s.Out.Cols...)
	c.Applied.Cols = append([]string(nil), s.Applied.Cols...)
	c.Copied.Cols = append([]string(nil), s.Copied.Cols...)
	c.Applied2.Cols = append([]string(nil), s.Applied2.Cols...)
	c.Copied2.Cols = append([]string(nil), s.Copied2.Cols...)
	c.Info = make(map[string]string, len(s.Info))
	for k, v := range s.Info {
		c.Info[k] = v
	}
	return &c
}

// Program is an ordered list of TCAP statements forming a DAG.
type Program struct {
	Stmts []*Stmt
}

// Clone deep-copies the program.
func (p *Program) Clone() *Program {
	out := &Program{Stmts: make([]*Stmt, len(p.Stmts))}
	for i, s := range p.Stmts {
		out.Stmts[i] = s.Clone()
	}
	return out
}

// Producer returns the statement producing the named vector list, or nil.
func (p *Program) Producer(name string) *Stmt {
	for _, s := range p.Stmts {
		if s.Out.Name == name {
			return s
		}
	}
	return nil
}

// Consumers returns the statements reading the named vector list.
func (p *Program) Consumers(name string) []*Stmt {
	var out []*Stmt
	for _, s := range p.Stmts {
		if s.Op == OpScan {
			continue
		}
		if s.Applied.Name == name || (s.Op == OpJoin && s.Applied2.Name == name) {
			out = append(out, s)
		}
	}
	return out
}

// Validate checks structural invariants: each statement's inputs must be
// produced earlier, every referenced column must exist in the producer's
// output, and output names must be unique.
func (p *Program) Validate() error {
	produced := map[string]*Stmt{}
	for i, s := range p.Stmts {
		check := func(ref ColumnsRef, which string) error {
			if ref.Name == "" {
				return nil
			}
			prod, ok := produced[ref.Name]
			if !ok {
				return fmt.Errorf("tcap: stmt %d (%s): %s input %q not yet produced", i, s.Out.Name, which, ref.Name)
			}
			for _, c := range ref.Cols {
				if !prod.Out.Has(c) {
					return fmt.Errorf("tcap: stmt %d (%s): column %q not in %s", i, s.Out.Name, c, prod.Out)
				}
			}
			return nil
		}
		if s.Op != OpScan {
			if err := check(s.Applied, "applied"); err != nil {
				return err
			}
			if err := check(s.Copied, "copied"); err != nil {
				return err
			}
		}
		if s.Op == OpJoin {
			if err := check(s.Applied2, "applied2"); err != nil {
				return err
			}
			if err := check(s.Copied2, "copied2"); err != nil {
				return err
			}
		}
		if s.Op != OpOutput {
			if s.Out.Name == "" {
				return fmt.Errorf("tcap: stmt %d lacks an output name", i)
			}
			if _, dup := produced[s.Out.Name]; dup {
				return fmt.Errorf("tcap: duplicate output name %q", s.Out.Name)
			}
			produced[s.Out.Name] = s
		}
	}
	return nil
}

// Sinks returns the statements whose output no other statement consumes
// (typically the OUTPUT statements).
func (p *Program) Sinks() []*Stmt {
	var out []*Stmt
	for _, s := range p.Stmts {
		if s.Op == OpOutput || len(p.Consumers(s.Out.Name)) == 0 {
			out = append(out, s)
		}
	}
	return out
}

// IsAncestor reports whether statement a is an ancestor of statement b in
// the dataflow DAG (a's output feeds, possibly transitively, b's input).
// Used by optimization rules such as redundant-method-call elimination.
func (p *Program) IsAncestor(a, b *Stmt) bool {
	if a == b {
		return false
	}
	seen := map[string]bool{}
	var reach func(s *Stmt) bool
	reach = func(s *Stmt) bool {
		if s == nil || s.Op == OpScan {
			return false
		}
		for _, in := range []string{s.Applied.Name, s.Applied2.Name} {
			if in == "" || seen[in] {
				continue
			}
			seen[in] = true
			prod := p.Producer(in)
			if prod == a || reach(prod) {
				return true
			}
		}
		return false
	}
	return reach(b)
}

// Remove deletes a statement from the program.
func (p *Program) Remove(target *Stmt) {
	for i, s := range p.Stmts {
		if s == target {
			p.Stmts = append(p.Stmts[:i], p.Stmts[i+1:]...)
			return
		}
	}
}
