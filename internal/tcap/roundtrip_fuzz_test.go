package tcap_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/lambda"
	"repro/internal/object"
	"repro/internal/optimizer"
	"repro/internal/tcap"
)

// FuzzTCAPRoundTrip compiles fuzz-shaped relational computations — ORDER
// BY / top-k over arbitrary key arities, kinds, and directions, DISTINCT,
// WINDOW, and semi/anti JOIN — and asserts the printed TCAP round-trips
// through Parse unchanged, before and after optimization. The printed text
// is the only cross-process program representation (proc-mode workers
// re-parse it), so Print→Parse identity is a wire-format contract, not a
// cosmetic one.
func FuzzTCAPRoundTrip(f *testing.F) {
	f.Add([]byte{0, 2, 1, 7, 3})
	f.Add([]byte{1, 1, 0, 0, 0})
	f.Add([]byte{2, 3, 5, 0, 9})
	f.Add([]byte{3, 1, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			return
		}
		op := data[0] % 4
		nKeys := 1 + int(data[1])%3
		descMask := data[2]
		limit := int(data[3]) % 50
		kindSel := data[4]

		kinds := []object.Kind{object.KInt64, object.KFloat64, object.KString, object.KBool}
		methods := []string{"k0", "k1", "k2"}
		keys := make([]core.SortKey, nKeys)
		for i := range keys {
			m := methods[i]
			keys[i] = core.SortKey{
				Term: func(e *lambda.Arg) lambda.Term { return lambda.FromMethod(e, m) },
				Kind: kinds[(int(kindSel)+i)%len(kinds)],
				Desc: descMask&(1<<i) != 0,
			}
		}
		scan := core.NewScan("db", "rows", "T")
		var comp core.Computation
		switch op {
		case 0:
			comp = &core.OrderBy{In: scan, ArgType: "T", Keys: keys, Limit: limit}
		case 1:
			comp = &core.Distinct{In: scan, ArgType: "T",
				Key:     func(e *lambda.Arg) lambda.Term { return lambda.FromMethod(e, "k0") },
				KeyKind: kinds[int(kindSel)%len(kinds)],
				Make: func(a *object.Allocator, key object.Value) (object.Ref, error) {
					return object.NilRef, nil
				}}
		case 2:
			comp = &core.Window{In: scan, ArgType: "T", Keys: keys,
				Val:     func(e *lambda.Arg) lambda.Term { return lambda.FromMethod(e, "v") },
				ValKind: object.KInt64,
				Combine: func(a *object.Allocator, cur object.Value, exists bool, next object.Value) (object.Value, error) {
					return next, nil
				},
				Emit: func(a *object.Allocator, obj object.Ref, running object.Value) (object.Ref, error) {
					return obj, nil
				}}
		case 3:
			kind := core.JoinSemi
			if descMask&1 == 1 {
				kind = core.JoinAnti
			}
			comp = &core.Join{
				In:       []core.Computation{scan, core.NewScan("db", "rows2", "T")},
				ArgTypes: []string{"T", "T"},
				Kind:     kind,
				Predicate: func(args []*lambda.Arg) lambda.Term {
					return lambda.Eq(lambda.FromMethod(args[0], "k0"), lambda.FromMethod(args[1], "k0"))
				}}
		}
		res, err := core.Compile(core.NewWrite("db", "out", comp))
		if err != nil {
			// Some fuzz shapes are legitimately rejected (e.g. kinds the
			// sort key encoder refuses); rejection is not a round-trip bug.
			t.Skip()
		}
		check := func(stage string, prog *tcap.Program) {
			text := prog.Print()
			reparsed, err := tcap.Parse(text)
			if err != nil {
				t.Fatalf("%s: printed program does not re-parse: %v\n%s", stage, err, text)
			}
			if reparsed.Print() != text {
				t.Fatalf("%s: round-trip changed the program:\n%s\nvs\n%s", stage, text, reparsed.Print())
			}
		}
		check("compiled", res.Prog)
		opt, _, err := optimizer.Optimize(res.Prog)
		if err != nil {
			t.Fatalf("optimize: %v\n%s", err, res.Prog.Print())
		}
		check("optimized", opt)
	})
}
