package swiss

import (
	"math/rand"
	"testing"

	"repro/internal/object"
)

// mkRef fabricates a distinguishable ref without touching page memory —
// the tables only store and compare refs, never dereference them.
func mkRef(i int) object.Ref {
	return object.Ref{Off: uint32(i + 1)}
}

func refsEqual(a, b []object.Ref) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// collect flattens a RefTable bucket into one slice (first, then rest).
func collect(first object.Ref, rest []object.Ref) []object.Ref {
	out := make([]object.Ref, 0, 1+len(rest))
	out = append(out, first)
	return append(out, rest...)
}

// checkAgainstRef compares every key of the reference map against the
// table, then walks Range asserting insertion order.
func checkAgainstRef(t *testing.T, rt *RefTable, ref map[uint64][]object.Ref, order []uint64) {
	t.Helper()
	if rt.Len() != len(ref) {
		t.Fatalf("Len=%d, reference has %d keys", rt.Len(), len(ref))
	}
	for h, want := range ref {
		first, rest, found := rt.Lookup(h)
		if !found {
			t.Fatalf("hash %#x missing", h)
		}
		if got := collect(first, rest); !refsEqual(got, want) {
			t.Fatalf("hash %#x: got %v want %v", h, got, want)
		}
		if rt.Count(h) != len(want) {
			t.Fatalf("hash %#x: Count=%d want %d", h, rt.Count(h), len(want))
		}
	}
	i := 0
	rt.Range(func(h uint64, first object.Ref, rest []object.Ref) bool {
		if i >= len(order) {
			t.Fatalf("Range yielded more than %d keys", len(order))
		}
		if h != order[i] {
			t.Fatalf("Range position %d: hash %#x, insertion order says %#x", i, h, order[i])
		}
		i++
		return true
	})
	if i != len(order) {
		t.Fatalf("Range yielded %d keys, want %d", i, len(order))
	}
}

// TestRefTableDifferential drives random insert streams with several key
// distributions against a map reference, crossing growth boundaries.
func TestRefTableDifferential(t *testing.T) {
	dists := []struct {
		name string
		next func(r *rand.Rand) uint64
	}{
		// Sequential small ints: the adversarial case for weak mixing.
		{"sequential", func() func(*rand.Rand) uint64 {
			n := uint64(0)
			return func(*rand.Rand) uint64 { n++; return n }
		}()},
		{"uniform", func(r *rand.Rand) uint64 { return r.Uint64() }},
		// Duplicate-heavy: 32 hot keys take most inserts.
		{"dup-skew", func(r *rand.Rand) uint64 {
			if r.Intn(10) < 9 {
				return uint64(r.Intn(32))
			}
			return r.Uint64()
		}},
		// High bits only: zero low-bit entropy before mixing.
		{"high-bits", func(r *rand.Rand) uint64 { return uint64(r.Intn(1024)) << 54 }},
	}
	for _, d := range dists {
		t.Run(d.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			rt := NewRefTable()
			ref := map[uint64][]object.Ref{}
			var order []uint64
			for i := 0; i < 5000; i++ {
				h := d.next(r)
				rv := mkRef(i)
				rt.Add(h, rv)
				if _, ok := ref[h]; !ok {
					order = append(order, h)
				}
				ref[h] = append(ref[h], rv)
			}
			checkAgainstRef(t, rt, ref, order)
			if _, _, found := rt.Lookup(0xdeadbeefcafef00d); found {
				t.Fatal("lookup of never-inserted hash reported found")
			}
		})
	}
}

// TestRefTableGrowthBoundaries inserts exactly up to, at, and past each
// load-factor trip point and re-verifies everything after every resize.
func TestRefTableGrowthBoundaries(t *testing.T) {
	rt := NewRefTable()
	ref := map[uint64][]object.Ref{}
	var order []uint64
	lastResizes := rt.Resizes()
	for i := 0; i < 600; i++ {
		h := uint64(i) * 0x9e3779b97f4a7c15 // distinct keys
		rv := mkRef(i)
		rt.Add(h, rv)
		order = append(order, h)
		ref[h] = append(ref[h], rv)
		if rt.Resizes() != lastResizes {
			lastResizes = rt.Resizes()
			checkAgainstRef(t, rt, ref, order)
		}
	}
	if lastResizes == 0 {
		t.Fatal("600 distinct keys never triggered a resize")
	}
	checkAgainstRef(t, rt, ref, order)
}

// TestRefTableCloneIndependence mutates original and clone separately and
// checks neither sees the other's writes (the checkpoint contract).
func TestRefTableCloneIndependence(t *testing.T) {
	rt := NewRefTable()
	for i := 0; i < 100; i++ {
		rt.Add(uint64(i%17), mkRef(i)) // duplicate-heavy: rest slices in play
	}
	snap := rt.Clone()
	wantLen, wantCount := snap.Len(), snap.Count(3)

	// Mutate the original: existing keys (append into rest) and new keys
	// (force growth so ctrl arrays diverge structurally).
	for i := 100; i < 400; i++ {
		rt.Add(uint64(i), mkRef(i))
	}
	rt.Add(3, mkRef(9999))

	if snap.Len() != wantLen || snap.Count(3) != wantCount {
		t.Fatalf("clone saw original's writes: Len=%d Count(3)=%d, want %d/%d",
			snap.Len(), snap.Count(3), wantLen, wantCount)
	}
	// Mutate the clone; the original's bucket 5 must not change.
	before := rt.Count(5)
	snap.Add(5, mkRef(8888))
	if rt.Count(5) != before {
		t.Fatal("original saw clone's write")
	}
}

// TestRefTableAddBucket checks the merge primitive preserves per-bucket
// order (first then rest, appended after existing refs) and copies rather
// than aliases incoming slices.
func TestRefTableAddBucket(t *testing.T) {
	src := []object.Ref{mkRef(10), mkRef(11)}
	rt := NewRefTable()
	rt.Add(7, mkRef(1))
	rt.AddBucket(7, mkRef(2), src)
	rt.AddBucket(9, mkRef(3), src)

	first, rest, _ := rt.Lookup(7)
	if got := collect(first, rest); !refsEqual(got, []object.Ref{mkRef(1), mkRef(2), mkRef(10), mkRef(11)}) {
		t.Fatalf("bucket 7 order wrong: %v", got)
	}
	src[0] = mkRef(777) // mutate the source; table must hold its own copy
	_, rest9, _ := rt.Lookup(9)
	if got := collect(mkRef(3), rest9); !refsEqual(got, []object.Ref{mkRef(3), mkRef(10), mkRef(11)}) {
		t.Fatalf("bucket 9 aliased the caller's slice: %v", got)
	}
}

// TestIndexDifferential checks the multimap against a reference, including
// deliberate full-hash collisions between distinct payloads.
func TestIndexDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	x := NewIndex(0)
	type entry struct {
		hash uint64
		slot uint32
	}
	var all []entry
	hashes := make([]uint64, 300)
	for i := range hashes {
		hashes[i] = r.Uint64()
	}
	for i := 0; i < 4000; i++ {
		h := hashes[r.Intn(len(hashes))] // many slots share a full hash
		e := entry{hash: h, slot: uint32(i)}
		x.Insert(h, e.slot)
		all = append(all, e)
	}
	if x.Len() != len(all) {
		t.Fatalf("Len=%d want %d", x.Len(), len(all))
	}
	// Every inserted (hash, slot) pair must be findable when eq targets it.
	for _, e := range all {
		slot, found := x.Lookup(e.hash, func(s uint32) bool { return s == e.slot })
		if !found || slot != e.slot {
			t.Fatalf("lookup(%#x → %d): found=%v slot=%d", e.hash, e.slot, found, slot)
		}
	}
	// eq that rejects everything: never found, even for present hashes.
	if _, found := x.Lookup(all[0].hash, func(uint32) bool { return false }); found {
		t.Fatal("lookup with all-rejecting eq reported found")
	}
	if _, found := x.Lookup(0xfeedface, func(uint32) bool { return true }); found {
		t.Fatal("lookup of absent hash reported found")
	}
}

// TestIndexReset checks Reset empties the index and that reuse after Reset
// behaves like a fresh index.
func TestIndexReset(t *testing.T) {
	x := NewIndex(100)
	for i := 0; i < 200; i++ {
		x.Insert(uint64(i), uint32(i))
	}
	x.Reset(10)
	if x.Len() != 0 {
		t.Fatalf("Len=%d after Reset", x.Len())
	}
	if _, found := x.Lookup(5, func(uint32) bool { return true }); found {
		t.Fatal("stale entry visible after Reset")
	}
	for i := 0; i < 50; i++ {
		x.Insert(uint64(1000+i), uint32(i))
	}
	for i := 0; i < 50; i++ {
		slot, found := x.Lookup(uint64(1000+i), func(s uint32) bool { return s == uint32(i) })
		if !found || slot != uint32(i) {
			t.Fatalf("post-Reset lookup %d failed", i)
		}
	}
}

// TestMatchWordExhaustive validates the SWAR tag matcher against a
// byte-by-byte reference over structured and random words.
func TestMatchWordExhaustive(t *testing.T) {
	refMatch := func(w uint64, tag uint8) []int {
		var out []int
		for i := 0; i < 8; i++ {
			if uint8(w>>(8*i)) == tag {
				out = append(out, i)
			}
		}
		return out
	}
	check := func(w uint64, tag uint8) {
		t.Helper()
		want := refMatch(w, tag)
		m := matchWord(w, tag)
		// The SWAR scan may flag extra candidates (borrow false positives);
		// it must never miss a true match, and callers verify candidates.
		got := map[int]bool{}
		for i := 0; i < 8; i++ {
			if m&(0x80<<(8*i)) != 0 {
				got[i] = true
			}
		}
		for _, i := range want {
			if !got[i] {
				t.Fatalf("matchWord(%#x, %#x) missed byte %d", w, tag, i)
			}
		}
		// False positives only ever occur for tag candidates the caller
		// rejects; bound them so the fast path stays fast: a flagged byte
		// must be the tag or sit directly above a true match (borrow).
		for i := range got {
			if uint8(w>>(8*i)) == tag {
				continue
			}
			if i == 0 || uint8(w>>(8*(i-1))) != tag {
				t.Fatalf("matchWord(%#x, %#x) flagged unrelated byte %d", w, tag, i)
			}
		}
	}
	r := rand.New(rand.NewSource(99))
	for n := 0; n < 100000; n++ {
		check(r.Uint64(), uint8(r.Intn(128)))
	}
	// Structured cases: empties everywhere, repeated tags, tag 0, 0x01
	// borrow neighbors.
	check(0x8080808080808080, 0x00)
	check(0x0000000000000000, 0x00)
	check(0x0101010101010101, 0x01)
	check(0x0100010001000100, 0x00)
	for tag := 0; tag < 128; tag++ {
		w := uint64(tag) * lsb
		check(w, uint8(tag))
		check(w, uint8((tag+1)%128))
	}
}

// FuzzRefTable is the differential fuzzer: a byte stream drives interleaved
// Add/Lookup/Clone decisions against a map reference.
func FuzzRefTable(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rt := NewRefTable()
		ref := map[uint64][]object.Ref{}
		var order []uint64
		for i, b := range data {
			h := uint64(b % 61) // small key space: duplicates + collisions
			if b%7 == 0 {
				h = uint64(b) << 48 // occasional far-away key
			}
			rv := mkRef(i)
			rt.Add(h, rv)
			if _, ok := ref[h]; !ok {
				order = append(order, h)
			}
			ref[h] = append(ref[h], rv)
			if b%31 == 0 {
				rt = rt.Clone() // exercise Clone mid-stream
			}
		}
		checkAgainstRef(t, rt, ref, order)
	})
}
