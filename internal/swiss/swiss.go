// Package swiss implements cache-friendly open-addressing hash tables with
// group-probed control bytes — the engine's analogue of the "swiss table"
// family. A table's metadata is a flat array of control bytes, one per slot,
// organized in 16-slot groups: an empty slot holds 0x80 and a full slot
// holds the 7-bit H2 tag of its key's hash, so a probe scans a whole group
// word-at-a-time (two 64-bit words per group, pure-Go SWAR matching) and
// touches entry storage only for slots whose tag already agrees.
//
// Entries live in a dense append-only array and the slot array stores
// indices into it, so iteration in insertion order is a linear walk of the
// entry array, independent of the hash layout — the property the engine's
// determinism contract needs. Workloads here are insert/lookup only (no
// deletes), so there are no tombstones: probing stops at the first group
// containing an empty slot.
//
// The two instantiations are RefTable (join-table buckets: uint64 hash →
// object refs, inline first entry) and Index (a hash → slot-number multimap
// accelerating probes into a page-backed object.OMap).
package swiss

import "math/bits"

const (
	// groupSlots is the number of slots scanned per probe step; the group's
	// control bytes are matched as two 64-bit words.
	groupSlots = 16
	groupWords = groupSlots / 8

	// ctrlEmpty marks an empty slot. Full slots hold the 7-bit H2 tag, so
	// the high bit of a control byte is set exactly when the slot is empty.
	ctrlEmpty = 0x80

	lsb = 0x0101010101010101
	msb = 0x8080808080808080
)

// Mix64 is the 64-bit avalanche finalizer (murmur3's fmix64) the tables
// apply to incoming hashes before deriving the group index (H1) and tag
// byte (H2). The engine's own hashes stay untouched everywhere else —
// partition routing, OMap slot order, and every pinned iteration order are
// functions of the raw hash — so the stronger mixing is swiss-internal and
// cannot shift existing results; it only makes tags well-distributed even
// for weakly mixed inputs (sequential FNV-1a values, offset hashes).
func Mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// splitHash derives the probe start group and tag byte from a raw hash.
func splitHash(hash uint64, groupMask uint64) (group uint64, tag uint8) {
	h := Mix64(hash)
	return (h >> 7) & groupMask, uint8(h & 0x7f)
}

// matchWord returns a word with the high bit of byte i set when ctrl byte i
// may equal tag (the classic SWAR zero-byte scan; a borrow can set a false
// positive immediately above a true match, which costs one wasted entry
// check and nothing else — every candidate is verified against the stored
// full hash).
func matchWord(w uint64, tag uint8) uint64 {
	x := w ^ (lsb * uint64(tag))
	return (x - lsb) &^ x & msb
}

// emptyWord returns a word with the high bit of byte i set when ctrl byte i
// is empty (exact: full tags are 7-bit, so the high bit IS the empty flag).
func emptyWord(w uint64) uint64 { return w & msb }

// ctrl is the shared control-byte core: the group-organized byte array
// (stored as words), the parallel slot array of entry indices, and the
// probe/growth machinery. The concrete tables own the entry storage and
// drive find/insert with callbacks resolved per candidate slot.
type ctrl struct {
	words     []uint64 // groupWords per group, byte i of word = one slot
	slots     []uint32 // entry index per slot, parallel to the ctrl bytes
	groupMask uint64   // groups-1 (groups are a power of two)
	resizes   uint64
}

func newCtrl(groups int) ctrl {
	c := ctrl{}
	c.reset(groups)
	return c
}

// groupsFor picks the power-of-two group count holding n entries under the
// 7/8 load factor.
func groupsFor(n int) int {
	groups := 1
	for groups*groupSlots*7 < n*8 {
		groups *= 2
	}
	return groups
}

func (c *ctrl) reset(groups int) {
	if groups < 1 {
		groups = 1
	}
	need := groups * groupWords
	if cap(c.words) >= need {
		c.words = c.words[:need]
		c.slots = c.slots[:groups*groupSlots]
	} else {
		c.words = make([]uint64, need)
		c.slots = make([]uint32, groups*groupSlots)
	}
	for i := range c.words {
		c.words[i] = msb // every byte 0x80: all slots empty
	}
	c.groupMask = uint64(groups) - 1
}

func (c *ctrl) capacity() int { return len(c.slots) }

// needsGrow reports whether inserting one more entry (n currently stored)
// would push the table past its 7/8 load factor.
func (c *ctrl) needsGrow(n int) bool { return (n+1)*8 > c.capacity()*7 }

// find probes for an entry matching hash, calling match(entryIndex) on each
// tag candidate; it returns the matched entry index, or ok=false with the
// slot where an insert of this hash would land.
func (c *ctrl) find(hash uint64, match func(entry uint32) bool) (entry uint32, slot int, ok bool) {
	g, tag := splitHash(hash, c.groupMask)
	for {
		base := int(g) * groupWords
		for w := 0; w < groupWords; w++ {
			m := matchWord(c.words[base+w], tag)
			for m != 0 {
				s := int(g)*groupSlots + w*8 + bits.TrailingZeros64(m)>>3
				e := c.slots[s]
				if match(e) {
					return e, s, true
				}
				m &= m - 1
			}
		}
		if e0 := emptyWord(c.words[base]); e0 != 0 {
			return 0, int(g)*groupSlots + bits.TrailingZeros64(e0)>>3, false
		}
		if e1 := emptyWord(c.words[base+1]); e1 != 0 {
			return 0, int(g)*groupSlots + 8 + bits.TrailingZeros64(e1)>>3, false
		}
		g = (g + 1) & c.groupMask
	}
}

// findInsertSlot probes for the first empty slot in hash's probe sequence
// without matching tags (rebuild path: all keys are known distinct).
func (c *ctrl) findInsertSlot(hash uint64) int {
	g, _ := splitHash(hash, c.groupMask)
	for {
		base := int(g) * groupWords
		if e0 := emptyWord(c.words[base]); e0 != 0 {
			return int(g)*groupSlots + bits.TrailingZeros64(e0)>>3
		}
		if e1 := emptyWord(c.words[base+1]); e1 != 0 {
			return int(g)*groupSlots + 8 + bits.TrailingZeros64(e1)>>3
		}
		g = (g + 1) & c.groupMask
	}
}

// claim marks slot full with hash's tag and records its entry index.
func (c *ctrl) claim(slot int, hash uint64, entry uint32) {
	_, tag := splitHash(hash, c.groupMask)
	word := slot >> 3
	shift := uint(slot&7) * 8
	c.words[word] = c.words[word]&^(0xff<<shift) | uint64(tag)<<shift
	c.slots[slot] = entry
}

// grow doubles the group count and re-places every entry; hashOf returns
// entry i's raw hash. Entry storage never moves — only the control bytes
// and slot indices are rebuilt — so dense iteration order is unaffected.
func (c *ctrl) grow(n int, hashOf func(entry uint32) uint64) {
	groups := int(c.groupMask+1) * 2
	// Rebuild into fresh arrays (reset would clobber the old layout we no
	// longer need — entries are re-placed from their own hashes).
	c.words = nil
	c.slots = nil
	c.reset(groups)
	for i := 0; i < n; i++ {
		h := hashOf(uint32(i))
		c.claim(c.findInsertSlot(h), h, uint32(i))
	}
	c.resizes++
}
