package swiss

// indexEntry pairs a raw key hash with an opaque 32-bit payload (for the
// engine: an OMap slot number).
type indexEntry struct {
	hash uint64
	slot uint32
}

// Index is a hash → uint32 multimap used to accelerate lookups into an
// external structure that remains the source of truth (the engine points
// it at page-backed object.OMap slots). Distinct keys may collide on the
// full 64-bit hash, so Lookup takes an equality callback and Insert never
// deduplicates. The index carries no durable state: it is rebuilt from the
// backing structure after restore, clone, or growth.
type Index struct {
	ctrl
	entries []indexEntry
}

// NewIndex returns an index pre-sized for about n entries.
func NewIndex(n int) *Index {
	return &Index{ctrl: newCtrl(groupsFor(n))}
}

// Reset empties the index and re-sizes it for about n entries, reusing the
// existing arrays when they are large enough.
func (x *Index) Reset(n int) {
	x.entries = x.entries[:0]
	g := groupsFor(n)
	if g < int(x.groupMask+1) {
		g = int(x.groupMask + 1) // never shrink: reuse beats compaction here
	}
	x.reset(g)
}

// Len returns the number of entries stored.
func (x *Index) Len() int { return len(x.entries) }

// Resizes returns how many times the control array has grown.
func (x *Index) Resizes() uint64 { return x.resizes }

func (x *Index) hashAt(e uint32) uint64 { return x.entries[e].hash }

// Insert records hash → slot. Duplicate hashes accumulate; the caller's
// Lookup equality callback disambiguates them.
func (x *Index) Insert(hash uint64, slot uint32) {
	if x.needsGrow(len(x.entries)) {
		x.grow(len(x.entries), x.hashAt)
	}
	s := x.findInsertSlot(hash)
	x.entries = append(x.entries, indexEntry{hash: hash, slot: slot})
	x.claim(s, hash, uint32(len(x.entries)-1))
}

// Lookup finds the slot whose stored hash equals hash and whose payload
// satisfies eq (called with the candidate slot). It probes every same-hash
// entry until eq accepts one, so full-hash collisions between distinct
// keys resolve correctly.
func (x *Index) Lookup(hash uint64, eq func(slot uint32) bool) (slot uint32, found bool) {
	e, _, ok := x.find(hash, func(e uint32) bool {
		return x.entries[e].hash == hash && eq(x.entries[e].slot)
	})
	if !ok {
		return 0, false
	}
	return x.entries[e].slot, true
}
