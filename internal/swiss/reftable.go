package swiss

import "repro/internal/object"

// refEntry is one distinct join key. The first ref is stored inline so the
// common unique-key case never allocates a per-key slice — the map-based
// baseline pays one []object.Ref allocation per distinct key.
type refEntry struct {
	hash  uint64
	first object.Ref
	rest  []object.Ref
}

// RefTable maps a 64-bit join hash to its list of build-side refs. It is
// the swiss-table replacement for the engine's map[uint64][]object.Ref
// join table: group-probed control bytes, dense insertion-ordered entries,
// and an inline first ref per key. Lookups are safe for concurrent readers
// once building is done; Add/Merge are single-writer.
type RefTable struct {
	ctrl
	entries []refEntry
}

// NewRefTable returns an empty table sized for a handful of keys.
func NewRefTable() *RefTable {
	return &RefTable{ctrl: newCtrl(1)}
}

// Len returns the number of distinct hashes stored.
func (t *RefTable) Len() int { return len(t.entries) }

// Resizes returns how many times the control array has grown.
func (t *RefTable) Resizes() uint64 { return t.resizes }

// MemBytes estimates the table's heap footprint: control words, slot
// indices, the dense entry array, and every overflow ref slice.
func (t *RefTable) MemBytes() uint64 {
	b := uint64(cap(t.words))*8 + uint64(cap(t.slots))*4
	b += uint64(cap(t.entries)) * uint64(24+16) // hash + first + slice header
	for i := range t.entries {
		b += uint64(cap(t.entries[i].rest)) * 8
	}
	return b
}

func (t *RefTable) hashAt(e uint32) uint64 { return t.entries[e].hash }

// Add appends r to hash's ref list, creating the entry on first sight.
func (t *RefTable) Add(hash uint64, r object.Ref) {
	if e, _, ok := t.find(hash, func(e uint32) bool { return t.entries[e].hash == hash }); ok {
		t.entries[e].rest = append(t.entries[e].rest, r)
		return
	}
	if t.needsGrow(len(t.entries)) {
		t.grow(len(t.entries), t.hashAt)
	}
	_, slot, ok := t.find(hash, func(uint32) bool { return false })
	if ok {
		panic("swiss: unreachable match with constant-false predicate")
	}
	t.entries = append(t.entries, refEntry{hash: hash, first: r})
	t.claim(slot, hash, uint32(len(t.entries)-1))
}

// Lookup returns hash's refs as (inline first, overflow rest). When found
// is false the key is absent. Callers must treat both return slices/values
// as read-only views into the table.
func (t *RefTable) Lookup(hash uint64) (first object.Ref, rest []object.Ref, found bool) {
	e, _, ok := t.find(hash, func(e uint32) bool { return t.entries[e].hash == hash })
	if !ok {
		return object.Ref{}, nil, false
	}
	return t.entries[e].first, t.entries[e].rest, true
}

// Count returns the number of refs stored under hash (0 when absent).
func (t *RefTable) Count(hash uint64) int {
	e, _, ok := t.find(hash, func(e uint32) bool { return t.entries[e].hash == hash })
	if !ok {
		return 0
	}
	return 1 + len(t.entries[e].rest)
}

// Range calls fn once per distinct hash in insertion order, passing the
// inline first ref and the (possibly nil) overflow slice. Both are
// read-only views; fn must not retain or mutate rest.
func (t *RefTable) Range(fn func(hash uint64, first object.Ref, rest []object.Ref) bool) {
	for i := range t.entries {
		e := &t.entries[i]
		if !fn(e.hash, e.first, e.rest) {
			return
		}
	}
}

// Clone deep-copies the table: the clone's entries and overflow slices are
// independent, so later Adds to either side never alias. This is the
// checkpoint primitive behind JoinTable.Clone.
func (t *RefTable) Clone() *RefTable {
	c := &RefTable{
		ctrl: ctrl{
			words:     append([]uint64(nil), t.words...),
			slots:     append([]uint32(nil), t.slots...),
			groupMask: t.groupMask,
			resizes:   t.resizes,
		},
		entries: make([]refEntry, len(t.entries)),
	}
	copy(c.entries, t.entries)
	for i := range c.entries {
		if len(c.entries[i].rest) > 0 {
			c.entries[i].rest = append([]object.Ref(nil), c.entries[i].rest...)
		}
	}
	return c
}

// AddBucket appends a whole ref list (first + rest, in that order) under
// hash — the merge primitive. Appended refs are copied, never aliased.
func (t *RefTable) AddBucket(hash uint64, first object.Ref, rest []object.Ref) {
	if e, _, ok := t.find(hash, func(e uint32) bool { return t.entries[e].hash == hash }); ok {
		t.entries[e].rest = append(t.entries[e].rest, first)
		t.entries[e].rest = append(t.entries[e].rest, rest...)
		return
	}
	if t.needsGrow(len(t.entries)) {
		t.grow(len(t.entries), t.hashAt)
	}
	_, slot, _ := t.find(hash, func(uint32) bool { return false })
	ent := refEntry{hash: hash, first: first}
	if len(rest) > 0 {
		ent.rest = append([]object.Ref(nil), rest...)
	}
	t.entries = append(t.entries, ent)
	t.claim(slot, hash, uint32(len(t.entries)-1))
}
