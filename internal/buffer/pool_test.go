package buffer

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/object"
)

// memBacking is an in-memory Backing for tests.
type memBacking struct {
	mu    sync.Mutex
	pages map[uint64][]byte
}

func newMemBacking() *memBacking { return &memBacking{pages: map[uint64][]byte{}} }

func (m *memBacking) WritePage(id uint64, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	m.pages[id] = cp
	return nil
}

func (m *memBacking) ReadPage(id uint64) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.pages[id]
	if !ok {
		return nil, fmt.Errorf("no page %d", id)
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	return cp, nil
}

func TestPoolNewPageAndPin(t *testing.T) {
	reg := object.NewRegistry()
	pool := NewPool(4, 4096, reg, newMemBacking())
	p, err := pool.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	if p.ID == 0 {
		t.Error("page should receive an ID")
	}
	if err := pool.Unpin(p.ID, false); err != nil {
		t.Fatal(err)
	}
	q, err := pool.Pin(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Error("resident pin should return the same page")
	}
	if pool.Stats.Hits != 1 {
		t.Errorf("hits = %d, want 1", pool.Stats.Hits)
	}
}

func TestPoolEvictsAndReloads(t *testing.T) {
	reg := object.NewRegistry()
	back := newMemBacking()
	pool := NewPool(2, 4096, reg, back)

	// Fill a page with a recognizable object and release it dirty.
	p1, _ := pool.NewPage()
	a := object.NewAllocator(p1, object.PolicyLightweightReuse)
	s, err := object.MakeString(a, "survives eviction")
	if err != nil {
		t.Fatal(err)
	}
	p1.SetRoot(s.Off)
	id1 := p1.ID
	_ = pool.Unpin(id1, true)

	// Two more pages force the first out.
	p2, _ := pool.NewPage()
	_ = pool.Unpin(p2.ID, false)
	p3, _ := pool.NewPage()
	_ = pool.Unpin(p3.ID, false)

	if pool.Stats.Evictions == 0 {
		t.Fatal("expected an eviction")
	}
	// Reload: the page must come back from backing bytes, intact, with
	// zero deserialization (FromBytes adoption only).
	q, err := pool.Pin(id1)
	if err != nil {
		t.Fatal(err)
	}
	got := object.StringContents(object.Ref{Page: q, Off: q.Root()})
	if got != "survives eviction" {
		t.Errorf("reloaded content = %q", got)
	}
	if pool.Stats.Misses == 0 {
		t.Error("reload should count a miss")
	}
}

func TestPoolRefusesEvictingPinned(t *testing.T) {
	reg := object.NewRegistry()
	pool := NewPool(2, 4096, reg, newMemBacking())
	p1, _ := pool.NewPage()
	p2, _ := pool.NewPage()
	_ = p1
	_ = p2
	// All pages pinned: a third must fail.
	if _, err := pool.NewPage(); err == nil {
		t.Fatal("pool should refuse when every frame is pinned")
	}
}

func TestPoolUnpinErrors(t *testing.T) {
	reg := object.NewRegistry()
	pool := NewPool(2, 4096, reg, newMemBacking())
	if err := pool.Unpin(999, false); err == nil {
		t.Error("unpin of unknown page should fail")
	}
	p, _ := pool.NewPage()
	_ = pool.Unpin(p.ID, false)
	if err := pool.Unpin(p.ID, false); err == nil {
		t.Error("double unpin should fail")
	}
}

func TestPoolAdopt(t *testing.T) {
	reg := object.NewRegistry()
	pool := NewPool(4, 4096, reg, newMemBacking())
	pg := object.NewPage(4096, reg)
	if err := pool.Adopt(pg); err != nil {
		t.Fatal(err)
	}
	if pg.ID == 0 {
		t.Error("adopted page should get an ID")
	}
	if pool.Resident() != 1 {
		t.Errorf("resident = %d, want 1", pool.Resident())
	}
}

func TestPoolConcurrentPinUnpin(t *testing.T) {
	reg := object.NewRegistry()
	pool := NewPool(8, 4096, reg, newMemBacking())
	var ids []uint64
	for i := 0; i < 8; i++ {
		p, err := pool.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, p.ID)
		_ = pool.Unpin(p.ID, false)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := ids[(g+i)%len(ids)]
				if _, err := pool.Pin(id); err != nil {
					t.Error(err)
					return
				}
				if err := pool.Unpin(id, false); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
