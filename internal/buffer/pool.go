// Package buffer implements the worker storage server's buffer pool (paper
// §2, Appendix D.1): a bounded cache of pages with pin/unpin semantics and
// LRU eviction of unpinned pages to a backing store. Because PC pages need
// no (de)serialization, eviction and reload are raw byte copies.
package buffer

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/object"
)

// Backing persists evicted pages and reloads them on demand (the worker's
// user-level file system in the paper; a directory of page files here).
type Backing interface {
	WritePage(id uint64, data []byte) error
	ReadPage(id uint64) ([]byte, error)
}

// Stats counts pool activity.
type Stats struct {
	Hits      int
	Misses    int
	Evictions int
}

type frame struct {
	page *object.Page
	pins int
	elem *list.Element // position in the LRU list (nil while pinned)
}

// Pool is a bounded page cache.
type Pool struct {
	mu       sync.Mutex
	capacity int
	pageSize int
	reg      *object.Registry
	backing  Backing

	frames map[uint64]*frame
	lru    *list.List // uint64 page IDs, front = least recently used
	nextID uint64

	Stats Stats
}

// NewPool creates a pool holding at most capacity pages of pageSize bytes.
func NewPool(capacity, pageSize int, reg *object.Registry, backing Backing) *Pool {
	return &Pool{
		capacity: capacity,
		pageSize: pageSize,
		reg:      reg,
		backing:  backing,
		frames:   map[uint64]*frame{},
		lru:      list.New(),
	}
}

// PageSize returns the pool's page size.
func (p *Pool) PageSize() int { return p.pageSize }

// NewPage allocates a fresh pinned page with a pool-assigned ID.
func (p *Pool) NewPage() (*object.Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.makeRoomLocked(); err != nil {
		return nil, err
	}
	p.nextID++
	pg := object.NewPage(p.pageSize, p.reg)
	pg.ID = p.nextID
	p.frames[pg.ID] = &frame{page: pg, pins: 1}
	return pg, nil
}

// Adopt registers an externally created page (e.g. received from the
// network) with the pool, pinned.
func (p *Pool) Adopt(pg *object.Page) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.makeRoomLocked(); err != nil {
		return err
	}
	p.nextID++
	pg.ID = p.nextID
	p.frames[pg.ID] = &frame{page: pg, pins: 1}
	return nil
}

// Pin fetches a page by ID, loading it from backing storage if evicted.
// The caller must Unpin it.
func (p *Pool) Pin(id uint64) (*object.Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.frames[id]; ok {
		p.Stats.Hits++
		f.pins++
		if f.elem != nil {
			p.lru.Remove(f.elem)
			f.elem = nil
		}
		return f.page, nil
	}
	p.Stats.Misses++
	if p.backing == nil {
		return nil, fmt.Errorf("buffer: page %d not resident and no backing store", id)
	}
	data, err := p.backing.ReadPage(id)
	if err != nil {
		return nil, err
	}
	if err := p.makeRoomLocked(); err != nil {
		return nil, err
	}
	pg, err := object.FromBytes(data, p.reg)
	if err != nil {
		return nil, err
	}
	pg.ID = id
	p.frames[id] = &frame{page: pg, pins: 1}
	return pg, nil
}

// Unpin releases a pin; dirty pages become eligible for write-back on
// eviction.
func (p *Pool) Unpin(id uint64, dirty bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.frames[id]
	if !ok {
		return fmt.Errorf("buffer: unpin of non-resident page %d", id)
	}
	if f.pins == 0 {
		return fmt.Errorf("buffer: unpin of unpinned page %d", id)
	}
	if dirty {
		f.page.Dirty = true
	}
	f.pins--
	if f.pins == 0 {
		f.elem = p.lru.PushBack(id)
	}
	return nil
}

// makeRoomLocked evicts the LRU unpinned page when at capacity.
func (p *Pool) makeRoomLocked() error {
	for len(p.frames) >= p.capacity {
		front := p.lru.Front()
		if front == nil {
			return fmt.Errorf("buffer: pool exhausted (%d pages, all pinned)", len(p.frames))
		}
		id := front.Value.(uint64)
		p.lru.Remove(front)
		f := p.frames[id]
		if f.page.Dirty {
			if p.backing == nil {
				return fmt.Errorf("buffer: cannot evict dirty page %d without backing", id)
			}
			if err := p.backing.WritePage(id, f.page.Bytes()); err != nil {
				return err
			}
		}
		delete(p.frames, id)
		p.Stats.Evictions++
	}
	return nil
}

// Resident reports how many pages are currently cached.
func (p *Pool) Resident() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}
