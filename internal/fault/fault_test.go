package fault

import (
	"errors"
	"sync"
	"testing"
)

// TestHitFiresOnceAtK arms a panic at the 3rd hit and checks it fires
// there, exactly once, and never again on later hits.
func TestHitFiresOnceAtK(t *testing.T) {
	p := NewPlan(Injection{Site: Delivery, Worker: 1, K: 2})
	fire := func(site Site, worker int) (crashed *Crash) {
		defer func() {
			if r := recover(); r != nil {
				crashed = r.(*Crash)
			}
		}()
		p.Hit(site, worker)
		return nil
	}
	if c := fire(Delivery, 1); c != nil {
		t.Fatalf("hit 0 fired: %v", c)
	}
	if c := fire(Delivery, 0); c != nil {
		t.Fatalf("other worker fired: %v", c)
	}
	if c := fire(PageSeal, 1); c != nil {
		t.Fatalf("other site fired: %v", c)
	}
	if c := fire(Delivery, 1); c != nil {
		t.Fatalf("hit 1 fired: %v", c)
	}
	c := fire(Delivery, 1)
	if c == nil {
		t.Fatal("hit 2 did not fire")
	}
	if c.Site != Delivery || c.Worker != 1 || c.K != 2 {
		t.Fatalf("crash = %+v", c)
	}
	if p.Fired() != 1 || p.Pending() != 0 {
		t.Fatalf("fired=%d pending=%d, want 1/0", p.Fired(), p.Pending())
	}
	// Fire-once: the counter keeps advancing but the injection is spent.
	for i := 0; i < 10; i++ {
		if c := fire(Delivery, 1); c != nil {
			t.Fatalf("injection fired twice on hit %d", i)
		}
	}
}

// TestErrAtInjectsErrorSitesOnly checks error sites return *InjectedError
// through ErrAt and never panic through Hit, and vice versa.
func TestErrAtInjectsErrorSitesOnly(t *testing.T) {
	p := NewPlan(
		Injection{Site: SpillWrite, Worker: 0, K: 1},
		Injection{Site: Emit, Worker: 0, K: 0},
	)
	if err := p.ErrAt(SpillWrite, 0); err != nil {
		t.Fatalf("hit 0 errored: %v", err)
	}
	err := p.ErrAt(SpillWrite, 0)
	var inj *InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("hit 1 = %v, want *InjectedError", err)
	}
	// A panic-site injection is invisible to ErrAt...
	if err := p.ErrAt(Emit, 0); err != nil {
		t.Fatalf("ErrAt on a panic site returned %v", err)
	}
	// ...and Hit on a (different) error site is a no-op even when armed.
	p2 := NewPlan(Injection{Site: SpillRead, Worker: 0, K: 0})
	p2.Hit(SpillRead, 0) // must not panic
	if p2.Fired() != 0 {
		t.Fatal("Hit fired an error-site injection")
	}
}

// TestNilPlanIsSafe checks all methods no-op on a nil *Plan — the
// production default.
func TestNilPlanIsSafe(t *testing.T) {
	var p *Plan
	p.Hit(Delivery, 0)
	if err := p.ErrAt(SpillWrite, 0); err != nil {
		t.Fatal(err)
	}
	if p.Fired() != 0 || p.Pending() != 0 || p.Injections() != nil {
		t.Fatal("nil plan reported armed state")
	}
	if p.String() != "no faults" {
		t.Fatalf("String() = %q", p.String())
	}
}

// TestSeededIsReproducibleAndCoversSites checks the same seed yields the
// same schedule, and consecutive seeds cycle through every site.
func TestSeededIsReproducibleAndCoversSites(t *testing.T) {
	sites := []Site{PageSeal, Delivery, BuildPage, ProbePage, Emit}
	a := Seeded(42, 4, sites).Injections()
	b := Seeded(42, 4, sites).Injections()
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Fatalf("seed 42 not reproducible: %v vs %v", a, b)
	}
	seen := map[Site]bool{}
	for seed := int64(0); seed < int64(len(sites)); seed++ {
		in := Seeded(seed, 4, sites).Injections()[0]
		seen[in.Site] = true
		if in.Worker < 0 || in.Worker >= 4 {
			t.Fatalf("seed %d picked worker %d", seed, in.Worker)
		}
	}
	for _, s := range sites {
		if !seen[s] {
			t.Errorf("site %s never chosen across one seed cycle", s)
		}
	}
}

// TestConcurrentHits hammers one site from many goroutines and checks
// exactly one fires the armed injection.
func TestConcurrentHits(t *testing.T) {
	p := NewPlan(Injection{Site: PageSeal, Worker: 2, K: 50})
	var wg sync.WaitGroup
	var mu sync.Mutex
	crashes := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							crashes++
							mu.Unlock()
						}
					}()
					p.Hit(PageSeal, 2)
				}()
			}
		}()
	}
	wg.Wait()
	if crashes != 1 {
		t.Fatalf("crashes = %d, want exactly 1", crashes)
	}
}
