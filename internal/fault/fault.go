// Package fault is the deterministic fault-injection subsystem behind the
// cluster's crash tests and the chaos campaign (pcbench -chaos). A Plan is
// a seeded, reproducible fault schedule: each Injection names a Site (a
// well-known point in the runtime — a page seal, a lane delivery, a
// checkpoint write, a spill), a worker, and the 0-based hit index K at
// which it fires. Production code calls Hit/ErrAt unconditionally at every
// site — all Plan methods are safe on a nil receiver and cost one mutex
// hop when a plan is armed, nothing when it is nil — so the injected
// crashes travel the exact code paths a real user-code panic or disk error
// would.
//
// Injections fire exactly once. That models the transient faults the
// cluster's bounded retry policy (cluster.Config.MaxRetries) is meant to
// absorb: the recovered retry re-executes the same deterministic work
// without re-crashing, which is precisely what distinguishes it from a
// deterministic user bug (identical crash on every attempt — the retry
// policy fails those fast instead of burning retries).
//
// Hit counting is per (Site, Worker) and cumulative across crash retries:
// replayed work hits the counter again. For the single-injection schedules
// the chaos campaign sweeps, K therefore addresses the K-th occurrence of
// the site on that worker in the whole job, which on a first attempt is
// the K-th delivery/seal/spill exactly as the hand-placed test hooks used
// to count. Sites hit concurrently by several executor threads (PageSeal,
// SpillEnqueue) fire on whichever thread reaches hit K first — the
// schedule is deterministic in (Site, Worker, K) while the interleaving
// behind the K-th hit may vary; recovery correctness never depends on
// which thread crashed.
package fault

import (
	"fmt"
	"math/rand"
	"sync"
)

// Site is a well-known fault-injection point in the cluster runtime.
type Site int

const (
	// PageSeal fires as a producer executor thread seals a shuffle page,
	// before it enters the exchange (aggregation and join repartition
	// producers alike). Panic site; recovered by the producer-role retry
	// with sender-side dedup.
	PageSeal Site = iota
	// Delivery fires as the aggregation consumer takes delivery of a
	// shuffled page. Panic site; recovered by checkpoint restore + replay.
	Delivery
	// BuildPage fires as the join consumer takes delivery of a build-side
	// page. Panic site; recovered by the build's table-clone checkpoint.
	BuildPage
	// ProbePage fires as the join consumer takes delivery of a probe-side
	// page. Panic site; recovered by the probe cursor checkpoint.
	ProbePage
	// Emit fires immediately before the join hands a match to user emit.
	// Panic site; recovered by the exactly-once emit cursor.
	Emit
	// Finalize fires before the aggregation consumer finalizes its merged
	// maps. Panic site; recovered from the end-of-stream checkpoint.
	Finalize
	// Checkpoint fires at the start of a consumer checkpoint write (agg
	// snapshot persist, join build cut, join probe cut), before the
	// recovery record mutates. Panic site; the previous cut stays the
	// recovery point.
	Checkpoint
	// SpillEnqueue fires as the memory governor spills a page image to its
	// store. Panic site; lands on whichever backend goroutine crossed the
	// budget (producer enqueue or consumer settle).
	SpillEnqueue
	// SpillWrite injects an I/O error from the spill store's write path.
	// Error site; the job must fail cleanly, not hang or panic.
	SpillWrite
	// SpillRead injects an I/O error from the spill store's read path
	// (delivery reload or replay). Error site.
	SpillRead
	// CheckpointIO injects an I/O error from checkpoint persistence.
	// Error site.
	CheckpointIO
	// ConnDrop injects a dropped transport connection: the socket
	// transport severs its active connection immediately before a frame
	// write, forcing the redial path. Error site at the injection point,
	// but the transport absorbs it by reconnecting and re-sending the
	// frame — jobs still succeed, and ShipStats.Reconnects counts the
	// redials. Transport-level hits count against worker 0 (the wire has
	// no worker identity of its own).
	ConnDrop
	// ProcKill kills a proc-mode worker process (cmd/pcworker) mid-job.
	// Unlike the in-process sites, the fault executes across the process
	// boundary: the master extracts the injection (Plan.Take) and ships
	// it in the consume request, and the worker exits hard right after
	// its (K+1)-th durable checkpoint save — deterministically past a
	// durable cut, before the ack leaves its process. The master observes
	// both role sessions sever, respawns the process, and the role retry
	// resumes from the worker's durable cut exactly as for an in-process
	// crash.
	ProcKill
	// SortSpill fires as a sort sink seals a sorted in-memory run and
	// spills it to its spill pool (the sort's memory-bounded path),
	// before the run's first slot write — so a crashed producer retries
	// with no leaked slots. Panic site; recovered by the producer-role
	// retry with sender-side dedup.
	SortSpill
	// ProbeBitmap fires as an outer-join probe records a build-side match
	// in the match bitmap, immediately before the bit mutates. Panic
	// site; recovered by the bitmap + probe-cursor checkpoint.
	ProbeBitmap

	numSites
)

// String names the site.
func (s Site) String() string {
	names := [...]string{
		PageSeal:     "PageSeal",
		Delivery:     "Delivery",
		BuildPage:    "BuildPage",
		ProbePage:    "ProbePage",
		Emit:         "Emit",
		Finalize:     "Finalize",
		Checkpoint:   "Checkpoint",
		SpillEnqueue: "SpillEnqueue",
		SpillWrite:   "SpillWrite",
		SpillRead:    "SpillRead",
		CheckpointIO: "CheckpointIO",
		ConnDrop:     "ConnDrop",
		ProcKill:     "ProcKill",
		SortSpill:    "SortSpill",
		ProbeBitmap:  "ProbeBitmap",
	}
	if s >= 0 && int(s) < len(names) {
		return names[s]
	}
	return fmt.Sprintf("Site(%d)", int(s))
}

// IsError reports whether the site injects an error (ErrAt) rather than a
// panic (Hit).
func (s Site) IsError() bool {
	return s == SpillWrite || s == SpillRead || s == CheckpointIO || s == ConnDrop
}

// Injection is one scheduled fault: at the K-th hit (0-based) of Site on
// Worker, panic (panic sites) or return an injected error (error sites).
type Injection struct {
	Site   Site
	Worker int
	K      int
}

// Crash is the panic value of an injected crash. It is distinguishable
// from any user-code panic, so tests can tell an injected fault from an
// organic bug.
type Crash struct {
	Site   Site
	Worker int
	K      int
}

// Error makes Crash readable when a backend formats the recovered panic.
func (c *Crash) Error() string {
	return fmt.Sprintf("fault: injected crash at %s (worker %d, hit %d)", c.Site, c.Worker, c.K)
}

// InjectedError is the error value returned by an armed error site.
type InjectedError struct {
	Site   Site
	Worker int
	K      int
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected %s I/O error (worker %d, hit %d)", e.Site, e.Worker, e.K)
}

type siteKey struct {
	site   Site
	worker int
}

type armed struct {
	Injection
	fired bool
}

// Plan is one job's fault schedule: a set of injections plus the
// per-(site, worker) hit counters they fire against. All methods are safe
// for concurrent use and on a nil receiver (a nil *Plan is the "no faults"
// plan production code always threads through).
type Plan struct {
	mu   sync.Mutex
	inj  []armed
	hits map[siteKey]int
}

// NewPlan arms a schedule of injections.
func NewPlan(injections ...Injection) *Plan {
	return &Plan{inj: append([]armed(nil), func() []armed {
		a := make([]armed, len(injections))
		for i, in := range injections {
			a[i] = armed{Injection: in}
		}
		return a
	}()...), hits: map[siteKey]int{}}
}

// count advances the (site, worker) hit counter and returns the armed
// injection that fires at this hit, if any.
func (p *Plan) count(site Site, worker int) *armed {
	k := siteKey{site, worker}
	hit := p.hits[k]
	p.hits[k] = hit + 1
	for i := range p.inj {
		in := &p.inj[i]
		if !in.fired && in.Site == site && in.Worker == worker && in.K == hit {
			in.fired = true
			return in
		}
	}
	return nil
}

// Hit records one occurrence of a panic site on worker and panics with a
// *Crash if an armed injection fires here. Error sites never fire through
// Hit. Safe on a nil plan (no-op).
func (p *Plan) Hit(site Site, worker int) {
	if p == nil || site.IsError() {
		return
	}
	p.mu.Lock()
	in := p.count(site, worker)
	p.mu.Unlock()
	if in != nil {
		panic(&Crash{Site: site, Worker: worker, K: in.K})
	}
}

// ErrAt records one occurrence of an error site on worker and returns an
// *InjectedError if an armed injection fires here, nil otherwise. Panic
// sites never fire through ErrAt. Safe on a nil plan (returns nil).
func (p *Plan) ErrAt(site Site, worker int) error {
	if p == nil || !site.IsError() {
		return nil
	}
	p.mu.Lock()
	in := p.count(site, worker)
	p.mu.Unlock()
	if in != nil {
		return &InjectedError{Site: site, Worker: worker, K: in.K}
	}
	return nil
}

// Take extracts the first unfired injection armed at (site, worker),
// marking it fired, and returns its K. Proc-mode masters use it to ship a
// fault across the process boundary instead of firing it in-process —
// the worker executes it (ProcKill: exit hard right after the (K+1)-th
// durable checkpoint save), so "fired" here means "shipped into the
// worker". ok is false when nothing is armed there. Safe on a nil plan.
func (p *Plan) Take(site Site, worker int) (k int, ok bool) {
	if p == nil {
		return 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.inj {
		in := &p.inj[i]
		if !in.fired && in.Site == site && in.Worker == worker {
			in.fired = true
			return in.K, true
		}
	}
	return 0, false
}

// Fired reports how many of the plan's injections have fired.
func (p *Plan) Fired() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for i := range p.inj {
		if p.inj[i].fired {
			n++
		}
	}
	return n
}

// Pending reports how many of the plan's injections have not fired (the
// workload never reached their hit index — e.g. a worker that owned no
// pages of the targeted stream).
func (p *Plan) Pending() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for i := range p.inj {
		if !p.inj[i].fired {
			n++
		}
	}
	return n
}

// Injections returns a copy of the plan's schedule.
func (p *Plan) Injections() []Injection {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Injection, len(p.inj))
	for i := range p.inj {
		out[i] = p.inj[i].Injection
	}
	return out
}

// String describes the schedule ("panic@ProbePage w1 k3; err@SpillRead w0
// k0") for campaign reports and test failures.
func (p *Plan) String() string {
	if p == nil {
		return "no faults"
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := ""
	for i := range p.inj {
		in := &p.inj[i]
		kind := "panic"
		if in.Site.IsError() {
			kind = "err"
		}
		if s != "" {
			s += "; "
		}
		s += fmt.Sprintf("%s@%s w%d k%d", kind, in.Site, in.Worker, in.K)
	}
	if s == "" {
		return "empty plan"
	}
	return s
}

// defaultMaxK caps the hit index Seeded draws per site, tuned so most
// schedules land inside the workload's actual hit counts (a K past the
// stream's end simply never fires — the campaign reports it as pending).
var defaultMaxK = map[Site]int{
	PageSeal:     3,
	Delivery:     4,
	BuildPage:    4,
	ProbePage:    4,
	Emit:         16,
	Finalize:     1,
	Checkpoint:   2,
	SpillEnqueue: 3,
	SpillWrite:   2,
	SpillRead:    2,
	CheckpointIO: 1,
	ConnDrop:     3,
	ProcKill:     3,
	SortSpill:    2,
	ProbeBitmap:  8,
}

// Seeded derives a reproducible single-injection plan from seed. The site
// cycles through sites with the seed — consecutive seeds cover every site —
// and the worker and hit index come from a seed-keyed PRNG, so a (seed,
// workers, sites) triple always names the same schedule.
func Seeded(seed int64, workers int, sites []Site) *Plan {
	if len(sites) == 0 || workers <= 0 {
		return NewPlan()
	}
	idx := int(seed % int64(len(sites)))
	if idx < 0 {
		idx += len(sites)
	}
	site := sites[idx]
	rng := rand.New(rand.NewSource(seed))
	maxK := defaultMaxK[site]
	if maxK <= 0 {
		maxK = 1
	}
	return NewPlan(Injection{Site: site, Worker: rng.Intn(workers), K: rng.Intn(maxK)})
}
