package optimizer

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lambda"
	"repro/internal/object"
	"repro/internal/physical"
	"repro/internal/tcap"
)

// fixture builds the Emp/Sup schema and data used by the §7 examples.
type fixture struct {
	reg      *object.Registry
	emp, sup *object.TypeInfo
	store    *core.MemStore
}

func newFixture(t testing.TB, nEmp, nSup int) *fixture {
	t.Helper()
	reg := object.NewRegistry()
	fx := &fixture{reg: reg, store: core.NewMemStore()}
	fx.sup = object.NewStruct("Sup").
		AddField("name", object.KString).
		MustBuild(reg)
	fx.emp = object.NewStruct("Emp").
		AddField("name", object.KString).
		AddField("salary", object.KFloat64).
		AddField("supervisor", object.KString).
		MustBuild(reg)
	emp := fx.emp
	emp.Methods["getSalary"] = object.Method{Name: "getSalary", Ret: object.KFloat64,
		Fn: func(r object.Ref) object.Value {
			return object.Float64Value(object.GetF64(r, emp.Field("salary")))
		}}
	emp.Methods["getSupervisor"] = object.Method{Name: "getSupervisor", Ret: object.KString,
		Fn: func(r object.Ref) object.Value {
			return object.StringValue(object.GetStrField(r, emp.Field("supervisor")))
		}}

	load := func(db, set string, n int, fill func(a *object.Allocator, i int) (object.Ref, error)) {
		p := object.NewPage(1<<18, reg)
		a := object.NewAllocator(p, object.PolicyLightweightReuse)
		root, err := object.MakeVector(a, object.KHandle, 0)
		if err != nil {
			t.Fatal(err)
		}
		root.Retain()
		p.SetRoot(root.Off)
		for i := 0; i < n; i++ {
			r, err := fill(a, i)
			if err != nil {
				t.Fatal(err)
			}
			if err := root.PushBackHandle(a, r); err != nil {
				t.Fatal(err)
			}
		}
		if err := fx.store.Append(db, set, []*object.Page{p}); err != nil {
			t.Fatal(err)
		}
	}
	load("db", "emps", nEmp, func(a *object.Allocator, i int) (object.Ref, error) {
		e, err := a.MakeObject(emp)
		if err != nil {
			return object.NilRef, err
		}
		if err := object.SetStrField(a, e, emp.Field("name"), fmt.Sprintf("e%d", i)); err != nil {
			return object.NilRef, err
		}
		object.SetF64(e, emp.Field("salary"), float64(i)*1000)
		return e, object.SetStrField(a, e, emp.Field("supervisor"), fmt.Sprintf("s%d", i%7))
	})
	load("db", "sups", nSup, func(a *object.Allocator, i int) (object.Ref, error) {
		sp, err := a.MakeObject(fx.sup)
		if err != nil {
			return object.NilRef, err
		}
		return sp, object.SetStrField(a, sp, fx.sup.Field("name"), fmt.Sprintf("s%d", i))
	})
	return fx
}

// run executes a program (optimized or not) and returns sorted result names.
func (fx *fixture) run(t testing.TB, res *core.CompileResult, prog *tcap.Program, outSet string) []string {
	t.Helper()
	plan, err := physical.Build(prog)
	if err != nil {
		t.Fatalf("plan: %v\n%s", err, prog.Print())
	}
	store := core.NewMemStore()
	for k, v := range fx.store.Sets {
		store.Sets[k] = v
	}
	ex := core.NewExecutor(store, fx.reg, 1<<18, 4)
	resCopy := *res
	resCopy.Prog = prog
	if err := ex.Run(&resCopy, plan); err != nil {
		t.Fatalf("run: %v\n%s\n%s", err, prog.Print(), plan.String())
	}
	pages, err := store.Pages("db", outSet)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, p := range pages {
		if p.Root() == 0 {
			continue
		}
		root := object.AsVector(object.Ref{Page: p, Off: p.Root()})
		for i := 0; i < root.Len(); i++ {
			r := root.HandleAt(i)
			ti := fx.reg.Lookup(r.TypeCode())
			names = append(names, object.GetStrField(r, ti.Field("name")))
		}
	}
	sort.Strings(names)
	return names
}

// section7Selection is the paper's redundant-method-call example.
func section7Selection() *core.Write {
	sel := &core.Selection{
		In:      core.NewScan("db", "emps", "Emp"),
		ArgType: "Emp",
		Predicate: func(emp *lambda.Arg) lambda.Term {
			return lambda.And(
				lambda.Gt(lambda.FromMethod(emp, "getSalary"), lambda.ConstF64(5000)),
				lambda.Lt(lambda.FromMethod(emp, "getSalary"), lambda.ConstF64(50000)),
			)
		},
	}
	return core.NewWrite("db", "out", sel)
}

func TestSection7RedundantMethodCallRemoved(t *testing.T) {
	res, err := core.Compile(section7Selection())
	if err != nil {
		t.Fatal(err)
	}
	before := strings.Count(res.Prog.Print(), "'methodCall'")
	if before != 2 {
		t.Fatalf("pre-optimization methodCall count = %d, want 2", before)
	}
	opt, st, err := Optimize(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	after := strings.Count(opt.Print(), "'methodCall'")
	if after != 1 {
		t.Errorf("post-optimization methodCall count = %d, want 1\n%s", after, opt.Print())
	}
	if st.RedundantApplies != 1 {
		t.Errorf("RedundantApplies = %d, want 1", st.RedundantApplies)
	}
}

func TestSection7RedundantRemovalPreservesSemantics(t *testing.T) {
	fx := newFixture(t, 100, 7)
	res, err := core.Compile(section7Selection())
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := Optimize(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	plain := fx.run(t, res, res.Prog, "out")
	optimized := fx.run(t, res, opt, "out")
	if len(plain) == 0 {
		t.Fatal("empty baseline result")
	}
	if strings.Join(plain, ",") != strings.Join(optimized, ",") {
		t.Errorf("optimization changed results:\nplain: %v\nopt:   %v", plain, optimized)
	}
}

// section7Join is the paper's filter-pushdown example: join on
// emp.getSupervisor() == sup.name with an emp-only salary conjunct.
func section7Join(emp *object.TypeInfo) *core.Write {
	join := &core.Join{
		In:       []core.Computation{core.NewScan("db", "emps", "Emp"), core.NewScan("db", "sups", "Sup")},
		ArgTypes: []string{"Emp", "Sup"},
		Predicate: func(args []*lambda.Arg) lambda.Term {
			return lambda.And(
				lambda.Gt(lambda.FromMethod(args[0], "getSalary"), lambda.ConstF64(50000)),
				lambda.Eq(lambda.FromMethod(args[0], "getSupervisor"),
					lambda.FromMember(args[1], "name")),
			)
		},
		Projection: func(args []*lambda.Arg) lambda.Term { return lambda.FromSelf(args[0]) },
	}
	return core.NewWrite("db", "joined", join)
}

func TestSection7FilterPushedBelowJoin(t *testing.T) {
	fx := newFixture(t, 100, 7)
	res, err := core.Compile(section7Join(fx.emp))
	if err != nil {
		t.Fatal(err)
	}
	opt, st, err := Optimize(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if st.FiltersPushed != 1 {
		t.Fatalf("FiltersPushed = %d, want 1\n%s", st.FiltersPushed, opt.Print())
	}
	// In the optimized program a FILTER must appear before the JOIN.
	joinIdx, filterIdx := -1, -1
	for i, s := range opt.Stmts {
		if s.Op == tcap.OpJoin && joinIdx == -1 {
			joinIdx = i
		}
		if s.Op == tcap.OpFilter && s.Info["type"] == "pushed_filter" {
			filterIdx = i
		}
	}
	if filterIdx == -1 || joinIdx == -1 || filterIdx > joinIdx {
		t.Errorf("pushed filter at %d, join at %d; want filter first\n%s", filterIdx, joinIdx, opt.Print())
	}
}

func TestSection7PushdownPreservesSemantics(t *testing.T) {
	fx := newFixture(t, 120, 7)
	res, err := core.Compile(section7Join(fx.emp))
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := Optimize(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	plain := fx.run(t, res, res.Prog, "joined")
	optimized := fx.run(t, res, opt, "joined")
	if len(plain) == 0 {
		t.Fatal("empty baseline result — fixture too small")
	}
	if strings.Join(plain, ",") != strings.Join(optimized, ",") {
		t.Errorf("pushdown changed results:\nplain: %v\nopt:   %v", plain, optimized)
	}
}

func TestPushdownShrinksJoinTable(t *testing.T) {
	// The point of the rule: fewer rows reach the join. Execute both
	// programs and compare row counters.
	fx := newFixture(t, 200, 7)
	res, err := core.Compile(section7Join(fx.emp))
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := Optimize(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	rows := func(prog *tcap.Program) int {
		plan, err := physical.Build(prog)
		if err != nil {
			t.Fatal(err)
		}
		store := core.NewMemStore()
		for k, v := range fx.store.Sets {
			store.Sets[k] = v
		}
		ex := core.NewExecutor(store, fx.reg, 1<<18, 4)
		resCopy := *res
		resCopy.Prog = prog
		if err := ex.Run(&resCopy, plan); err != nil {
			t.Fatal(err)
		}
		return ex.Stats.JoinProbeRows
	}
	plain := rows(res.Prog)
	optimized := rows(opt)
	if optimized >= plain {
		t.Errorf("optimized join probed %d rows, plain %d; pushdown should reduce work", optimized, plain)
	}
}

func TestDeadColumnElimination(t *testing.T) {
	res, err := core.Compile(section7Selection())
	if err != nil {
		t.Fatal(err)
	}
	opt, st, err := Optimize(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if st.ColumnsDropped == 0 {
		t.Errorf("expected some dead columns to be dropped\n%s", opt.Print())
	}
	if err := opt.Validate(); err != nil {
		t.Errorf("invalid after dead-column elimination: %v", err)
	}
}

func TestOptimizeIsIdempotent(t *testing.T) {
	fx := newFixture(t, 10, 7)
	res, err := core.Compile(section7Join(fx.emp))
	if err != nil {
		t.Fatal(err)
	}
	opt1, _, err := Optimize(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	opt2, st2, err := Optimize(opt1)
	if err != nil {
		t.Fatal(err)
	}
	if st2.RedundantApplies != 0 || st2.FiltersPushed != 0 {
		t.Errorf("second optimization pass fired rules: %+v", st2)
	}
	if opt2.Print() == "" {
		t.Error("second pass produced empty program")
	}
}

func TestOptimizedProgramRoundTrips(t *testing.T) {
	fx := newFixture(t, 10, 7)
	res, err := core.Compile(section7Join(fx.emp))
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := Optimize(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tcap.Parse(opt.Print()); err != nil {
		t.Errorf("optimized program does not re-parse: %v\n%s", err, opt.Print())
	}
}

func TestOptimizeAggregationGraph(t *testing.T) {
	// Aggregations must pass through the optimizer unharmed.
	fx := newFixture(t, 50, 7)
	emp := fx.emp
	agg := &core.Aggregate{
		In:      core.NewScan("db", "emps", "Emp"),
		ArgType: "Emp",
		Key: func(arg *lambda.Arg) lambda.Term {
			return lambda.FromMethod(arg, "getSupervisor")
		},
		Val: func(arg *lambda.Arg) lambda.Term {
			return lambda.FromMethod(arg, "getSalary")
		},
		KeyKind: object.KString,
		ValKind: object.KFloat64,
		Combine: func(a *object.Allocator, cur object.Value, exists bool, next object.Value) (object.Value, error) {
			if !exists {
				return next, nil
			}
			return object.Float64Value(cur.F + next.F), nil
		},
		Finalize: func(a *object.Allocator, key, val object.Value) (object.Ref, error) {
			out, err := a.MakeObject(emp)
			if err != nil {
				return object.NilRef, err
			}
			if err := object.SetStrField(a, out, emp.Field("name"), key.S); err != nil {
				return object.NilRef, err
			}
			object.SetF64(out, emp.Field("salary"), val.F)
			return out, nil
		},
	}
	res, err := core.Compile(core.NewWrite("db", "agg", agg))
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := Optimize(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	got := fx.run(t, res, opt, "agg")
	if len(got) != 7 {
		t.Errorf("aggregation groups after optimize = %d, want 7", len(got))
	}
	_ = engine.BatchSize
}
