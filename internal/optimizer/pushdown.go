package optimizer

import (
	"fmt"

	"repro/internal/tcap"
)

// pushFiltersPastJoins fires rule 2 once per call: find a post-join FILTER
// over an AND tree, pick a conjunct whose computation reads exactly one join
// input's object column, replicate that computation onto the input's
// pipeline with an early FILTER, and delete the conjunct from the post-join
// predicate.
func pushFiltersPastJoins(p *tcap.Program, st *Stats) bool {
	for _, f := range p.Stmts {
		if f.Op != tcap.OpFilter || len(f.Applied.Cols) != 1 {
			continue
		}
		if tryPushConjunct(p, f, st) {
			return true
		}
	}
	return false
}

// conjunct is one leaf of a FILTER's AND tree: the boolean column, the AND
// statement consuming it, and the AND's other operand.
type conjunct struct {
	col      string
	andStmt  *tcap.Stmt
	otherCol string
}

// expandConjuncts walks the AND tree rooted at boolCol.
func expandConjuncts(p *tcap.Program, boolCol string, out *[]conjunct) {
	idx := producerIdx(p, boolCol)
	if idx < 0 {
		return
	}
	s := p.Stmts[idx]
	if s.Op == tcap.OpApply && s.Info["type"] == "bool" && s.Info["op"] == "&&" && len(s.Applied.Cols) == 2 {
		l, r := s.Applied.Cols[0], s.Applied.Cols[1]
		*out = append(*out,
			conjunct{col: l, andStmt: s, otherCol: r},
			conjunct{col: r, andStmt: s, otherCol: l})
		expandConjuncts(p, l, out)
		expandConjuncts(p, r, out)
	}
}

// closureOf collects the APPLY statements transitively producing col, plus
// the leaf columns they read from outside the closure. Returns nil when the
// closure contains non-APPLY producers or opaque natives (which block
// optimization, as the paper warns).
func closureOf(p *tcap.Program, col string) (stmts []*tcap.Stmt, leaves map[string]bool) {
	leaves = map[string]bool{}
	inClosure := map[*tcap.Stmt]bool{}
	var visit func(c string) bool
	visit = func(c string) bool {
		idx := producerIdx(p, c)
		if idx < 0 {
			return false
		}
		s := p.Stmts[idx]
		if s.Op != tcap.OpApply {
			// c comes from a SCAN, JOIN, or other non-APPLY producer:
			// a leaf of the conjunct's computation.
			leaves[c] = true
			return true
		}
		if s.Info["type"] == "native" {
			return false
		}
		if inClosure[s] {
			return true
		}
		inClosure[s] = true
		if s.Info["type"] == "const" {
			// Const applied columns only size the batch; they are
			// rewritten at the insertion site, not data leaves.
			return true
		}
		for _, in := range s.Applied.Cols {
			if !visit(in) {
				return false
			}
		}
		return true
	}
	if !visit(col) {
		return nil, nil
	}
	// Preserve program order.
	for _, s := range p.Stmts {
		if inClosure[s] {
			stmts = append(stmts, s)
		}
	}
	return stmts, leaves
}

// tryPushConjunct attempts rule 2 on one FILTER; true if the program changed.
func tryPushConjunct(p *tcap.Program, f *tcap.Stmt, st *Stats) bool {
	var conjs []conjunct
	expandConjuncts(p, f.Applied.Cols[0], &conjs)
	for _, cj := range conjs {
		if pushOne(p, f, cj, st) {
			return true
		}
	}
	return false
}

func stmtIndex(p *tcap.Program, s *tcap.Stmt) int {
	for i, x := range p.Stmts {
		if x == s {
			return i
		}
	}
	return -1
}

func pushOne(p *tcap.Program, f *tcap.Stmt, cj conjunct, st *Stats) bool {
	closure, leaves := closureOf(p, cj.col)
	if closure == nil || len(leaves) != 1 {
		return false
	}
	var leaf string
	for l := range leaves {
		leaf = l
	}

	// The conjunct must sit downstream of a JOIN carrying the leaf; find
	// the earliest such join between program start and the filter.
	fi := stmtIndex(p, f)
	var join *tcap.Stmt
	for i := 0; i < fi; i++ {
		s := p.Stmts[i]
		if s.Op != tcap.OpJoin {
			continue
		}
		if s.Copied2.Has(leaf) || s.Copied.Has(leaf) {
			join = s
			break
		}
	}
	if join == nil {
		return false
	}
	ji := stmtIndex(p, join)

	// Every closure statement must live after the join (post-join region)
	// and its internal columns must not feed anything outside the closure
	// except the AND consuming the conjunct.
	inClosure := map[*tcap.Stmt]bool{}
	closureCols := map[string]bool{}
	for _, s := range closure {
		inClosure[s] = true
		if stmtIndex(p, s) <= ji {
			return false
		}
		for _, c := range s.NewColumns() {
			closureCols[c] = true
		}
	}
	for _, s := range p.Stmts {
		if inClosure[s] {
			continue
		}
		reads := func(cols []string) bool {
			for _, c := range cols {
				if closureCols[c] && !(s == cj.andStmt && c == cj.col) {
					return true
				}
			}
			return false
		}
		if reads(s.Applied.Cols) || reads(s.Applied2.Cols) {
			return false
		}
	}

	// Walk back from the join input that carries the leaf to the first
	// list where the leaf exists: the insertion base.
	var startList string
	if join.Copied2.Has(leaf) {
		startList = join.Applied2.Name
	} else {
		startList = join.Applied.Name
	}
	base := p.Producer(startList)
	if base == nil || !base.Out.Has(leaf) {
		return false
	}
	for {
		if base.Op == tcap.OpScan {
			break
		}
		prev := p.Producer(base.Applied.Name)
		if prev == nil || !prev.Out.Has(leaf) {
			break
		}
		base = prev
	}
	baseIdx := stmtIndex(p, base)

	// The chain consumer to rewire: the statement between base and the
	// join that consumes base's list on this path.
	var chainConsumer *tcap.Stmt
	for i := baseIdx + 1; i <= ji; i++ {
		s := p.Stmts[i]
		if s.Op != tcap.OpScan && (s.Applied.Name == base.Out.Name ||
			(s.Op == tcap.OpJoin && s.Applied2.Name == base.Out.Name)) {
			// Must be an ancestor of (or be) the join.
			if s == join || p.IsAncestor(s, join) {
				chainConsumer = s
				break
			}
		}
	}
	if chainConsumer == nil {
		return false
	}

	// Build the clones: the closure recomputed over the base list, ending
	// in an early FILTER that preserves all of the base list's columns.
	var clones []*tcap.Stmt
	curList := base.Out.Name
	curCols := append([]string(nil), base.Out.Cols...)
	for _, s := range closure {
		c := s.Clone()
		c.Out.Name = fmt.Sprintf("%s_pd%d", s.Out.Name, st.FiltersPushed)
		c.Applied.Name = curList
		c.Copied.Name = curList
		c.Copied.Cols = append([]string(nil), curCols...)
		if c.Info["type"] == "const" {
			c.Applied.Cols = []string{leaf}
		}
		c.Out.Cols = append(append([]string(nil), curCols...), s.NewColumns()...)
		curList = c.Out.Name
		curCols = c.Out.Cols
		clones = append(clones, c)
	}
	early := &tcap.Stmt{
		Out:     tcap.ColumnsRef{Name: fmt.Sprintf("%s_pdf%d", base.Out.Name, st.FiltersPushed), Cols: append([]string(nil), base.Out.Cols...)},
		Op:      tcap.OpFilter,
		Applied: tcap.ColumnsRef{Name: curList, Cols: []string{cj.col}},
		Copied:  tcap.ColumnsRef{Name: curList, Cols: append([]string(nil), base.Out.Cols...)},
		Comp:    f.Comp,
		Info:    map[string]string{"type": "pushed_filter"},
	}
	clones = append(clones, early)

	// Delete the originals and collapse the AND.
	for _, s := range closure {
		p.Remove(s)
		rewireListConsumers(p, s.Out.Name, s.Applied.Name)
		for _, c := range s.NewColumns() {
			dropColEverywhere(p, 0, c)
		}
	}
	andCol := cj.andStmt.NewColumns()[0]
	other := cj.otherCol
	p.Remove(cj.andStmt)
	rewireListConsumers(p, cj.andStmt.Out.Name, cj.andStmt.Applied.Name)
	renameColRefs(p, 0, andCol, other)
	dropColEverywhere(p, 0, andCol)

	// Rewire the chain consumer to read the early filter's output.
	if chainConsumer.Applied.Name == base.Out.Name {
		chainConsumer.Applied.Name = early.Out.Name
	}
	if chainConsumer.Copied.Name == base.Out.Name {
		chainConsumer.Copied.Name = early.Out.Name
	}
	if chainConsumer.Op == tcap.OpJoin && chainConsumer.Applied2.Name == base.Out.Name {
		chainConsumer.Applied2.Name = early.Out.Name
		chainConsumer.Copied2.Name = early.Out.Name
	}

	// Splice the clones in right after the base producer.
	baseIdx = stmtIndex(p, base) // indices shifted by removals
	rest := append([]*tcap.Stmt(nil), p.Stmts[baseIdx+1:]...)
	p.Stmts = append(p.Stmts[:baseIdx+1], append(clones, rest...)...)

	st.FiltersPushed++
	return true
}
