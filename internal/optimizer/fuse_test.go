package optimizer

// Tests for rule 4 (kernel fusion): annotation correctness, the NoFuse
// ablation knob, and end-to-end semantic preservation through the core
// executor under every scheduler/fusion combination.

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/object"
	"repro/internal/physical"
	"repro/internal/tcap"
)

// fusedRuns collects the FuseGroup runs of a program: group id → length.
func fusedRuns(prog *tcap.Program) map[int]int {
	runs := map[int]int{}
	for _, s := range prog.Stmts {
		if s.FuseGroup != 0 {
			runs[s.FuseGroup]++
		}
	}
	return runs
}

func TestFusionAnnotatesAdjacentRuns(t *testing.T) {
	res, err := core.Compile(section7Selection())
	if err != nil {
		t.Fatal(err)
	}
	opt, st, err := Optimize(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if st.KernelsFused == 0 {
		t.Fatalf("selection pipeline fused no kernels\n%s", opt.Print())
	}
	runs := fusedRuns(opt)
	if len(runs) == 0 {
		t.Fatalf("KernelsFused = %d but no statements annotated", st.KernelsFused)
	}
	fusedStmts, sum := 0, 0
	for _, n := range runs {
		if n < 2 {
			t.Errorf("fused run of length %d; only runs of >= 2 may be annotated", n)
		}
		fusedStmts += n
		sum += n - 1
	}
	if sum != st.KernelsFused {
		t.Errorf("KernelsFused = %d, annotation implies %d (a run of L contributes L-1)", st.KernelsFused, sum)
	}
	// Annotated runs must be consecutive statements whose lists chain —
	// the same contract the engine re-validates.
	for i := 1; i < len(opt.Stmts); i++ {
		cur, prev := opt.Stmts[i], opt.Stmts[i-1]
		if cur.FuseGroup != 0 && cur.FuseGroup == prev.FuseGroup {
			if cur.Applied.Name != prev.Out.Name || cur.Copied.Name != prev.Out.Name {
				t.Errorf("fused neighbors do not chain: %s after %s", cur.Out.Name, prev.Out.Name)
			}
		}
	}
	if err := opt.Validate(); err != nil {
		t.Errorf("invalid after fusion annotation: %v", err)
	}
}

func TestNoFuseDisablesAnnotation(t *testing.T) {
	res, err := core.Compile(section7Selection())
	if err != nil {
		t.Fatal(err)
	}
	opt, st, err := OptimizeWith(res.Prog, Options{NoFuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.KernelsFused != 0 {
		t.Errorf("NoFuse run reported KernelsFused = %d", st.KernelsFused)
	}
	for _, s := range opt.Stmts {
		if s.FuseGroup != 0 {
			t.Fatalf("NoFuse run annotated statement %s", s.Out.Name)
		}
	}
}

func TestFusionAnnotationIsStable(t *testing.T) {
	fx := newFixture(t, 10, 7)
	res, err := core.Compile(section7Join(fx.emp))
	if err != nil {
		t.Fatal(err)
	}
	opt1, st1, err := Optimize(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	opt2, st2, err := Optimize(opt1)
	if err != nil {
		t.Fatal(err)
	}
	if st1.KernelsFused != st2.KernelsFused {
		t.Errorf("fusion not stable: first pass %d, second pass %d", st1.KernelsFused, st2.KernelsFused)
	}
	r1, r2 := fusedRuns(opt1), fusedRuns(opt2)
	if len(r1) != len(r2) {
		t.Errorf("fused run count changed across passes: %v vs %v", r1, r2)
	}
}

// TestFusionAndMorselsPreserveSemantics is the ablation grid: both knobs —
// fusion on/off, morsel scheduling on/off — at several thread counts must
// produce identical results for the §7 selection and join programs.
func TestFusionAndMorselsPreserveSemantics(t *testing.T) {
	fx := newFixture(t, 150, 7)
	for _, prog := range []struct {
		name string
		w    *core.Write
		out  string
	}{
		{"selection", section7Selection(), "out"},
		{"join", section7Join(fx.emp), "joined"},
	} {
		prog := prog
		t.Run(prog.name, func(t *testing.T) {
			res, err := core.Compile(prog.w)
			if err != nil {
				t.Fatal(err)
			}
			fused, _, err := Optimize(res.Prog)
			if err != nil {
				t.Fatal(err)
			}
			unfused, _, err := OptimizeWith(res.Prog, Options{NoFuse: true})
			if err != nil {
				t.Fatal(err)
			}
			exec := func(p *tcap.Program, threads, morselPages int) string {
				plan, err := physical.Build(p)
				if err != nil {
					t.Fatalf("plan: %v\n%s", err, p.Print())
				}
				store := core.NewMemStore()
				for k, v := range fx.store.Sets {
					store.Sets[k] = v
				}
				ex := core.NewExecutor(store, fx.reg, 1<<18, 4)
				ex.Threads = threads
				ex.MorselPages = morselPages
				resCopy := *res
				resCopy.Prog = p
				if err := ex.Run(&resCopy, plan); err != nil {
					t.Fatalf("run: %v\n%s", err, p.Print())
				}
				pages, err := store.Pages("db", prog.out)
				if err != nil {
					t.Fatal(err)
				}
				var names []string
				for _, pg := range pages {
					if pg.Root() == 0 {
						continue
					}
					root := object.AsVector(object.Ref{Page: pg, Off: pg.Root()})
					for i := 0; i < root.Len(); i++ {
						r := root.HandleAt(i)
						ti := fx.reg.Lookup(r.TypeCode())
						names = append(names, object.GetStrField(r, ti.Field("name")))
					}
				}
				// No sorting: OUTPUT materialization order is part of the
				// bit-for-bit contract across every configuration.
				return strings.Join(names, ",")
			}
			want := exec(unfused, 1, 0)
			if want == "" {
				t.Fatal("empty baseline result — fixture too small")
			}
			for _, threads := range []int{1, 2, 8} {
				for _, morselPages := range []int{0, 2} {
					for name, p := range map[string]*tcap.Program{"fused": fused, "unfused": unfused} {
						if got := exec(p, threads, morselPages); got != want {
							t.Errorf("%s threads=%d morselPages=%d diverged:\ngot  %s\nwant %s",
								name, threads, morselPages, got, want)
						}
					}
				}
			}
		})
	}
}
