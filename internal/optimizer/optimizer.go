// Package optimizer implements PC's rule-based TCAP optimizer (paper §7).
// The C++ system drives Prolog transformation rules to a fixpoint; here the
// rules are Go passes fired iteratively until no rule improves the program.
//
// Implemented rules:
//
//  1. Redundant APPLY elimination — two APPLYs of the same type
//     (methodCall/attAccess) invoking the same method/member over the same
//     data column, where one is the other's ancestor, collapse into one
//     (method calls are purely functional by contract).
//  2. Filter pushdown past joins — a post-join conjunct whose inputs depend
//     on only one join input is recomputed on that input's pipeline and
//     filtered before the join's HASH, shrinking both the hash table and
//     the probe stream.
//  3. Dead column elimination — columns no downstream statement reads are
//     dropped from Copied/Out lists.
//  4. Kernel fusion — maximal runs of adjacent APPLY/FILTER/HASH statements
//     that form a single-consumer chain are annotated with a shared
//     Stmt.FuseGroup, which the engine executes as one pass over each batch
//     (selection vectors instead of materialized intermediates). The
//     annotation is advisory: an engine that ignores it computes the same
//     result statement by statement.
//
// Rules rely on the compiler's SSA discipline: every column name is produced
// by exactly one statement.
package optimizer

import (
	"repro/internal/tcap"
)

// Stats counts rule applications (tests and the pcbench tooling).
type Stats struct {
	RedundantApplies int
	FiltersPushed    int
	ColumnsDropped   int
	// KernelsFused counts statements folded into a predecessor's fused
	// pass (a run of length L contributes L-1).
	KernelsFused int
	Iterations   int
}

// Options selects which rules run. The zero value enables everything.
type Options struct {
	// NoFuse disables the kernel-fusion annotation (rule 4) — the
	// ablation knob surfaced as cluster.Config.NoFusion.
	NoFuse bool
}

// Optimize drives all rules to a fixpoint on a copy of the program.
func Optimize(prog *tcap.Program) (*tcap.Program, *Stats, error) {
	return OptimizeWith(prog, Options{})
}

// OptimizeWith is Optimize with rule selection.
func OptimizeWith(prog *tcap.Program, opts Options) (*tcap.Program, *Stats, error) {
	p := prog.Clone()
	st := &Stats{}
	for iter := 0; iter < 64; iter++ {
		st.Iterations = iter + 1
		changed := false
		if removeRedundantApplies(p, st) {
			changed = true
		}
		if pushFiltersPastJoins(p, st) {
			changed = true
		}
		if !changed {
			break
		}
	}
	// Dead-column elimination runs once at the end (it does not enable
	// further rule firings but shrinks vector lists).
	eliminateDeadColumns(p, st)
	// Fusion runs last, over the final statement shapes: the groups it
	// assigns must describe exactly the columns execution will see.
	if !opts.NoFuse {
		fuseAdjacent(p, st)
	}
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	return p, st, nil
}

// producerIdx returns the index of the statement producing the column, or
// -1. SSA discipline: at most one producer.
func producerIdx(p *tcap.Program, col string) int {
	for i, s := range p.Stmts {
		for _, c := range s.NewColumns() {
			if c == col {
				return i
			}
		}
		if s.Op == tcap.OpScan || s.Op == tcap.OpJoin {
			for _, c := range s.Out.Cols {
				if c == col {
					return i
				}
			}
		}
	}
	return -1
}

// renameColRefs rewrites references to column old as column new in Applied
// lists of statements after fromIdx (Copied lists are handled by dropCol).
func renameColRefs(p *tcap.Program, fromIdx int, old, new string) {
	for i := fromIdx; i < len(p.Stmts); i++ {
		s := p.Stmts[i]
		for j, c := range s.Applied.Cols {
			if c == old {
				s.Applied.Cols[j] = new
			}
		}
		for j, c := range s.Applied2.Cols {
			if c == old {
				s.Applied2.Cols[j] = new
			}
		}
	}
}

// dropColEverywhere removes a column from all Out/Copied lists downstream.
func dropColEverywhere(p *tcap.Program, fromIdx int, col string) {
	drop := func(ref *tcap.ColumnsRef) {
		out := ref.Cols[:0]
		for _, c := range ref.Cols {
			if c != col {
				out = append(out, c)
			}
		}
		ref.Cols = out
	}
	for i := fromIdx; i < len(p.Stmts); i++ {
		s := p.Stmts[i]
		drop(&s.Out)
		drop(&s.Copied)
		drop(&s.Copied2)
	}
}

// rewireListConsumers repoints statements consuming list old to list new.
func rewireListConsumers(p *tcap.Program, old, new string) {
	for _, s := range p.Stmts {
		if s.Op == tcap.OpScan {
			continue
		}
		if s.Applied.Name == old {
			s.Applied.Name = new
		}
		if s.Copied.Name == old {
			s.Copied.Name = new
		}
		if s.Op == tcap.OpJoin {
			if s.Applied2.Name == old {
				s.Applied2.Name = new
			}
			if s.Copied2.Name == old {
				s.Copied2.Name = new
			}
		}
	}
}

// removeRedundantApplies fires rule 1 once per call (returning whether it
// changed the program); the fixpoint driver re-invokes it.
func removeRedundantApplies(p *tcap.Program, st *Stats) bool {
	for i, s1 := range p.Stmts {
		if s1.Op != tcap.OpApply {
			continue
		}
		t1 := s1.Info["type"]
		if t1 != "methodCall" && t1 != "attAccess" {
			continue
		}
		for j := i + 1; j < len(p.Stmts); j++ {
			s2 := p.Stmts[j]
			if s2.Op != tcap.OpApply || s2.Info["type"] != t1 {
				continue
			}
			if s2.Info["methodName"] != s1.Info["methodName"] ||
				s2.Info["attName"] != s1.Info["attName"] {
				continue
			}
			// Same data object: identical applied columns (SSA names).
			if len(s1.Applied.Cols) != len(s2.Applied.Cols) {
				continue
			}
			same := true
			for k := range s1.Applied.Cols {
				if s1.Applied.Cols[k] != s2.Applied.Cols[k] {
					same = false
					break
				}
			}
			if !same {
				continue
			}
			if !p.IsAncestor(s1, s2) {
				continue
			}
			// s1's result column must still be visible at s2's input.
			c1 := s1.NewColumns()[0]
			inProd := p.Producer(s2.Applied.Name)
			if inProd == nil || !inProd.Out.Has(c1) {
				continue
			}
			// Collapse: downstream uses of s2's column become c1,
			// consumers of s2's list read its input list, and s2's
			// column vanishes.
			c2 := s2.NewColumns()[0]
			p.Remove(s2)
			renameColRefs(p, 0, c2, c1)
			dropColEverywhere(p, 0, c2)
			rewireListConsumers(p, s2.Out.Name, s2.Applied.Name)
			st.RedundantApplies++
			return true
		}
	}
	return false
}

// fuseAdjacent fires rule 4: it annotates maximal runs of adjacent
// APPLY/FILTER/HASH statements with a shared nonzero FuseGroup when each
// link of the run is a pure chain — the next statement reads exactly the
// previous statement's output list (Applied and Copied both), and that
// intermediate list has no other consumer. Groups never cross statements
// physical planning could hoist between them, because only program-adjacent
// statements join a run; the engine additionally re-validates each run
// against the statement slice it actually executes.
func fuseAdjacent(p *tcap.Program, st *Stats) {
	for _, s := range p.Stmts {
		s.FuseGroup = 0 // idempotent re-optimization re-derives groups
	}
	fusable := func(s *tcap.Stmt) bool {
		switch s.Op {
		case tcap.OpApply, tcap.OpFilter, tcap.OpHash:
			return true
		}
		return false
	}
	group := 0
	for i := 0; i < len(p.Stmts); {
		if !fusable(p.Stmts[i]) {
			i++
			continue
		}
		j := i
		for j+1 < len(p.Stmts) {
			cur, next := p.Stmts[j], p.Stmts[j+1]
			if !fusable(next) ||
				next.Applied.Name != cur.Out.Name ||
				next.Copied.Name != cur.Out.Name ||
				len(p.Consumers(cur.Out.Name)) != 1 {
				break
			}
			j++
		}
		if j > i {
			group++
			for k := i; k <= j; k++ {
				p.Stmts[k].FuseGroup = group
			}
			st.KernelsFused += j - i
		}
		i = j + 1
	}
}

// eliminateDeadColumns walks the program backwards collecting, for every
// list, the columns downstream statements actually reference, then trims
// Out/Copied lists accordingly.
func eliminateDeadColumns(p *tcap.Program, st *Stats) {
	needed := map[string]map[string]bool{} // list name -> needed columns
	need := func(list string, cols []string) {
		if needed[list] == nil {
			needed[list] = map[string]bool{}
		}
		for _, c := range cols {
			needed[list][c] = true
		}
	}
	for i := len(p.Stmts) - 1; i >= 0; i-- {
		s := p.Stmts[i]
		switch s.Op {
		case tcap.OpScan:
			continue
		case tcap.OpOutput:
			need(s.Applied.Name, s.Applied.Cols)
			continue
		}
		// Trim this statement's outputs to what downstream needs; new
		// columns are always kept (the statement exists to create
		// them — redundant-apply removal handles useless creators).
		isNeeded := needed[s.Out.Name]
		keepAll := isNeeded == nil // unread lists: materialization targets, keep as-is
		newCols := map[string]bool{}
		for _, c := range s.NewColumns() {
			newCols[c] = true
		}
		// SORT/WINDOW sinks consume their Copied object column directly
		// (like OUTPUT consumes its Applied) — it never appears in Out, so
		// downstream liveness says nothing about it. Keep it untrimmed.
		sinkReads := s.Op == tcap.OpSort || s.Op == tcap.OpWindow
		if !keepAll {
			trim := func(ref *tcap.ColumnsRef) {
				out := ref.Cols[:0]
				for _, c := range ref.Cols {
					if isNeeded[c] || newCols[c] {
						out = append(out, c)
					} else {
						st.ColumnsDropped++
					}
				}
				ref.Cols = out
			}
			trim(&s.Out)
			if !sinkReads {
				trim(&s.Copied)
			}
			trim(&s.Copied2)
		}
		// Propagate requirements to inputs.
		need(s.Applied.Name, s.Applied.Cols)
		need(s.Applied.Name, s.Copied.Cols)
		if s.Op == tcap.OpJoin {
			need(s.Applied2.Name, s.Applied2.Cols)
			need(s.Applied2.Name, s.Copied2.Cols)
		}
	}
}
