package optimizer

import (
	"testing"

	"repro/internal/core"
	"repro/internal/lambda"
	"repro/internal/object"
	"repro/internal/tcap"
)

func sortWrite(limit int) *core.Write {
	ob := &core.OrderBy{
		In:      core.NewScan("db", "emps", "Emp"),
		ArgType: "Emp",
		Keys: []core.SortKey{{
			Term: func(e *lambda.Arg) lambda.Term { return lambda.FromMethod(e, "getSalary") },
			Kind: object.KFloat64,
			Desc: true,
		}},
		Limit: limit,
	}
	return core.NewWrite("db", "out", ob)
}

// TestSortCopiedSurvivesDeadColumnElimination is the regression pin for the
// dead-column rule: SORT and WINDOW consume their Copied object column
// directly (it never appears in Out), so liveness propagation alone would
// drop it and leave the sink with no object to carry.
func TestSortCopiedSurvivesDeadColumnElimination(t *testing.T) {
	res, err := core.Compile(sortWrite(0))
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := Optimize(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range opt.Stmts {
		if s.Op == tcap.OpSort || s.Op == tcap.OpWindow {
			if len(s.Copied.Cols) == 0 {
				t.Fatalf("dead-column elimination stripped the sink's Copied object column\n%s", opt.Print())
			}
		}
	}
}

// TestFusionStopsAtSortBoundary pins that kernel fusion never annotates a
// SORT/DISTINCT/WINDOW statement into a fused run: the sinks consume whole
// lists with their own drivers, and a fused group spanning one would hand
// the engine a pass shape it cannot execute.
func TestFusionStopsAtSortBoundary(t *testing.T) {
	for name, w := range map[string]*core.Write{
		"sort": sortWrite(0),
		"topk": sortWrite(5),
		"distinct": core.NewWrite("db", "out", &core.Distinct{
			In:      core.NewScan("db", "emps", "Emp"),
			ArgType: "Emp",
			Key:     func(e *lambda.Arg) lambda.Term { return lambda.FromMethod(e, "getSupervisor") },
			KeyKind: object.KString,
			Make: func(a *object.Allocator, key object.Value) (object.Ref, error) {
				return object.NilRef, nil
			},
		}),
	} {
		res, err := core.Compile(w)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		opt, _, err := Optimize(res.Prog)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, s := range opt.Stmts {
			switch s.Op {
			case tcap.OpSort, tcap.OpDistinct, tcap.OpWindow:
				if s.FuseGroup != 0 {
					t.Errorf("%s: %s statement joined fuse group %d\n%s", name, s.Op, s.FuseGroup, opt.Print())
				}
			}
		}
	}
}

// TestSortProgramRoundTripsOptimized pins that an optimized sort program —
// including the desc/limit Info keys execution depends on — survives
// Print→Parse unchanged.
func TestSortProgramRoundTripsOptimized(t *testing.T) {
	res, err := core.Compile(sortWrite(7))
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := Optimize(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := tcap.Parse(opt.Print())
	if err != nil {
		t.Fatalf("optimized sort program does not re-parse: %v\n%s", err, opt.Print())
	}
	if reparsed.Print() != opt.Print() {
		t.Fatalf("round-trip changed the program:\n%s\nvs\n%s", opt.Print(), reparsed.Print())
	}
	found := false
	for _, s := range reparsed.Stmts {
		if s.Op == tcap.OpSort {
			found = true
			if s.Info["limit"] != "7" || s.Info["desc"] == "" {
				t.Errorf("SORT Info lost in round-trip: %v", s.Info)
			}
		}
	}
	if !found {
		t.Fatal("reparsed program has no SORT statement")
	}
}

// TestOptimizedSortExecutes runs the optimized program end-to-end on the
// single-process executor: the optimizer may only rearrange, never change,
// the sorted result.
func TestOptimizedSortExecutes(t *testing.T) {
	fx := newFixture(t, 20, 7)
	res, err := core.Compile(sortWrite(0))
	if err != nil {
		t.Fatal(err)
	}
	raw := fx.run(t, res, res.Prog, "out")
	opt, _, err := Optimize(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	optd := fx.run(t, res, opt, "out")
	if len(raw) != 20 || len(optd) != 20 {
		t.Fatalf("sorted rows raw=%d opt=%d, want 20", len(raw), len(optd))
	}
	for i := range raw {
		if raw[i] != optd[i] {
			t.Fatalf("row %d: optimized %q != raw %q", i, optd[i], raw[i])
		}
	}
}
