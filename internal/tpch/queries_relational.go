package tpch

import (
	"repro/internal/object"
	"repro/pc"
)

// Relational-surface queries over the denormalized TPC-H instance: the
// paper's workload extended with the distributed ORDER BY/top-k, DISTINCT,
// and semi/anti join operators. Each query has a PC form here and a
// baseline form in queries_baseline.go so the differential tests can pin
// the engines against each other.

// PurchaseRec is the flat per-lineitem purchase row both engines flatten
// the customer graph into (TPC-H lineitem ⋈ orders ⋈ customer).
type PurchaseRec struct {
	CustKey int64
	PartID  int64
	SupKey  int64
}

// RegisterPurchase registers the flat Purchase type (idempotent per
// registry; call once next to RegisterSchema).
func RegisterPurchase(reg *object.Registry) *pc.TypeInfo {
	return object.NewStruct("Purchase").
		AddField("custkey", pc.KInt64).
		AddField("partID", pc.KInt64).
		AddField("supkey", pc.KInt64).
		MustBuild(reg)
}

func makePurchase(a *pc.Allocator, ti *pc.TypeInfo, r PurchaseRec) (pc.Ref, error) {
	obj, err := a.MakeObject(ti)
	if err != nil {
		return pc.Ref{}, err
	}
	object.SetI64(obj, ti.Field("custkey"), r.CustKey)
	object.SetI64(obj, ti.Field("partID"), r.PartID)
	object.SetI64(obj, ti.Field("supkey"), r.SupKey)
	return obj, nil
}

func readPurchase(ti *pc.TypeInfo, r pc.Ref) PurchaseRec {
	return PurchaseRec{
		CustKey: object.GetI64(r, ti.Field("custkey")),
		PartID:  object.GetI64(r, ti.Field("partID")),
		SupKey:  object.GetI64(r, ti.Field("supkey")),
	}
}

// FlattenPurchasesPC explodes each Customer graph into flat Purchase rows
// (a MultiSelection — the denormalization inverse) and writes them to
// db.outSet. The relational queries below consume this set.
func FlattenPurchasesPC(client *pc.Client, s *Schema, purchase *pc.TypeInfo, db, inSet, outSet string) error {
	msel := &pc.MultiSelection{
		In:      pc.NewScan(db, inSet, "Customer"),
		ArgType: "Customer",
		Projection: func(arg *pc.Arg) pc.Term {
			return pc.FromNative("toPurchases", pc.KHandle,
				func(ctx *pc.NativeCtx, args []pc.Value) (pc.Value, error) {
					cust := args[0].H
					custKey := object.GetI64(cust, s.Customer.Field("custkey"))
					orders := object.AsVector(object.GetHandleField(cust, s.Customer.Field("orders")))
					out, err := pc.MakeVector(ctx.Alloc, pc.KHandle, 8)
					if err != nil {
						return pc.Value{}, err
					}
					for i := 0; i < orders.Len(); i++ {
						items := object.AsVector(object.GetHandleField(orders.HandleAt(i), s.Order.Field("lineItems")))
						for j := 0; j < items.Len(); j++ {
							li := items.HandleAt(j)
							sup := object.GetHandleField(li, s.Lineitem.Field("supplier"))
							part := object.GetHandleField(li, s.Lineitem.Field("part"))
							row, err := makePurchase(ctx.Alloc, purchase, PurchaseRec{
								CustKey: custKey,
								PartID:  object.GetI64(part, s.Part.Field("partID")),
								SupKey:  object.GetI64(sup, s.Supplier.Field("supkey")),
							})
							if err != nil {
								return pc.Value{}, err
							}
							if err := out.PushBackHandle(ctx.Alloc, row); err != nil {
								return pc.Value{}, err
							}
						}
					}
					return pc.HandleValue(out.Ref), nil
				}, pc.FromSelf(arg))
		},
	}
	if err := client.CreateSet(db, outSet, "Purchase"); err != nil {
		return err
	}
	_, err := client.ExecuteComputations(pc.NewWrite(db, outSet, msel))
	return err
}

// TopCustomersByVolumePC is the ORDER BY + LIMIT query: the k customers
// who bought the most lineitems, ordered (volume desc, custkey asc) — a
// total order, so the result sequence is unique. Runs the distributed
// merge network over per-thread sorted runs.
func TopCustomersByVolumePC(client *pc.Client, s *Schema, db, inSet, outSet string, k int) ([]int64, error) {
	volume := func(e *pc.Arg) pc.Term {
		return pc.FromNative("custVolume", pc.KInt64,
			func(ctx *pc.NativeCtx, args []pc.Value) (pc.Value, error) {
				_, _, all := s.CustomerParts(args[0].H)
				return pc.Int64Value(int64(len(all))), nil
			}, pc.FromSelf(e))
	}
	orderBy := &pc.OrderBy{
		In:      pc.NewScan(db, inSet, "Customer"),
		ArgType: "Customer",
		Keys: []pc.SortKey{
			{Term: volume, Kind: pc.KInt64, Desc: true},
			{Term: func(e *pc.Arg) pc.Term { return pc.FromMember(e, "custkey") }, Kind: pc.KInt64},
		},
		Limit: k,
	}
	if err := client.CreateSet(db, outSet, "Customer"); err != nil {
		return nil, err
	}
	if _, err := client.ExecuteComputations(pc.NewWrite(db, outSet, orderBy)); err != nil {
		return nil, err
	}
	var keys []int64
	err := client.ScanSet(db, outSet, func(r pc.Ref) bool {
		keys = append(keys, object.GetI64(r, s.Customer.Field("custkey")))
		return true
	})
	return keys, err
}

// DistinctPartsSoldPC is the DISTINCT query: the set of part IDs that
// appear in any purchase (TPC-H Q16 flavor), deduplicated on the
// swiss-table agg path. Returns the IDs unordered.
func DistinctPartsSoldPC(client *pc.Client, purchase *pc.TypeInfo, db, inSet, outSet string) ([]int64, error) {
	distinct := &pc.Distinct{
		In:      pc.NewScan(db, inSet, "Purchase"),
		ArgType: "Purchase",
		Key:     func(e *pc.Arg) pc.Term { return pc.FromMember(e, "partID") },
		KeyKind: pc.KInt64,
		Make: func(a *pc.Allocator, key pc.Value) (pc.Ref, error) {
			return makePurchase(a, purchase, PurchaseRec{PartID: key.AsInt64()})
		},
	}
	if err := client.CreateSet(db, outSet, "Purchase"); err != nil {
		return nil, err
	}
	if _, err := client.ExecuteComputations(pc.NewWrite(db, outSet, distinct)); err != nil {
		return nil, err
	}
	var ids []int64
	err := client.ScanSet(db, outSet, func(r pc.Ref) bool {
		ids = append(ids, object.GetI64(r, purchase.Field("partID")))
		return true
	})
	return ids, err
}

// LoadPromoParts writes the promoted-part set (Part rows carrying only
// partID) — the right side of the semi/anti join queries.
func LoadPromoParts(client *pc.Client, s *Schema, db, set string, partIDs []int64) error {
	if err := client.CreateSet(db, set, "Part"); err != nil {
		return err
	}
	pages, err := client.BuildPages(len(partIDs), func(a *pc.Allocator, i int) (pc.Ref, error) {
		obj, err := a.MakeObject(s.Part)
		if err != nil {
			return pc.Ref{}, err
		}
		object.SetI64(obj, s.Part.Field("partID"), partIDs[i])
		return obj, nil
	})
	if err != nil {
		return err
	}
	return client.SendData(db, set, pages)
}

// PromoPurchasesPC is the semi/anti join query pair: purchases whose part
// is (semi) or is not (anti) in the promoted-part set. The left side
// streams through the recoverable probe with its match bitmap; output rows
// are left rows, each at most once.
func PromoPurchasesPC(client *pc.Client, purchase *pc.TypeInfo, kind pc.JoinKind,
	db, purchaseSet, promoSet, outSet string) ([]PurchaseRec, error) {
	join := &pc.Join{
		In: []pc.Computation{
			pc.NewScan(db, purchaseSet, "Purchase"),
			pc.NewScan(db, promoSet, "Part"),
		},
		ArgTypes: []string{"Purchase", "Part"},
		Kind:     kind,
		Predicate: func(args []*pc.Arg) pc.Term {
			return pc.Eq(pc.FromMember(args[0], "partID"), pc.FromMember(args[1], "partID"))
		},
	}
	if err := client.CreateSet(db, outSet, "Purchase"); err != nil {
		return nil, err
	}
	if _, err := client.ExecuteComputations(pc.NewWrite(db, outSet, join)); err != nil {
		return nil, err
	}
	var rows []PurchaseRec
	err := client.ScanSet(db, outSet, func(r pc.Ref) bool {
		rows = append(rows, readPurchase(purchase, r))
		return true
	})
	return rows, err
}
