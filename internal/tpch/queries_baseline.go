package tpch

import (
	"sort"

	"repro/internal/baseline"
	"repro/internal/stat"
)

// Baseline (Spark-analogue) implementations of the two §8.4 computations,
// algorithmically equivalent to the PC versions. Two storage modes match
// Table 3's rows: hot storage (read + full deserialization per run) and
// in-RAM deserialized (persisted dataset).

// Mode selects the baseline's data residence.
type Mode int

// Baseline storage modes.
const (
	ModeHotStorage Mode = iota // "Spark: hot HDFS"
	ModeInRAM                  // "Spark: in-RAM deserialized RDD"
)

// SupInfoRec is the flat-mapped per-(customer, supplier) record.
type SupInfoRec struct {
	Sup   string
	Cust  string
	Parts []int64
}

// SupAggRec is the grouped result: supplier → customer → parts.
type SupAggRec struct {
	Sup       string
	CustParts map[string][]int64
}

// TopKRec is the top-k accumulator record.
type TopKRec struct {
	K       int
	Entries []TopJaccardEntry
}

// PromoPartRec is the baseline's promoted-part row (semi/anti join right
// side).
type PromoPartRec struct {
	PartID int64
}

func init() {
	baseline.Register(GCustomer{})
	baseline.Register(SupInfoRec{})
	baseline.Register(SupAggRec{})
	baseline.Register(TopKRec{})
	baseline.Register(PurchaseRec{})
	baseline.Register(PromoPartRec{})
}

// BaselineData owns the baseline context and the loaded dataset.
type BaselineData struct {
	Ctx  *baseline.Context
	Mode Mode

	ram *baseline.Dataset
}

// LoadBaseline stores the customers in the baseline's storage service and,
// for ModeInRAM, pre-deserializes and persists them (the paper's
// distinct().count() warm-up).
func LoadBaseline(executors int, mode Mode, customers []GCustomer) (*BaselineData, error) {
	ctx := baseline.NewContext(executors)
	recs := make([]baseline.Record, len(customers))
	for i := range customers {
		recs[i] = customers[i]
	}
	if err := ctx.Store("customers", ctx.Parallelize(recs)); err != nil {
		return nil, err
	}
	bd := &BaselineData{Ctx: ctx, Mode: mode}
	if mode == ModeInRAM {
		ds, err := ctx.Read("customers")
		if err != nil {
			return nil, err
		}
		bd.ram = ds.Persist()
	}
	return bd, nil
}

// dataset returns the input dataset, paying the mode's access cost.
func (b *BaselineData) dataset() (*baseline.Dataset, error) {
	if b.Mode == ModeInRAM {
		return b.ram.Reuse()
	}
	return b.Ctx.Read("customers") // full decode every run
}

// gCustomerParts mirrors Schema.CustomerParts for the struct form.
func gCustomerParts(c *GCustomer) (bySup map[string][]int64, all []int64) {
	bySup = map[string][]int64{}
	for i := range c.Orders {
		for j := range c.Orders[i].LineItems {
			li := &c.Orders[i].LineItems[j]
			bySup[li.Supplier.Name] = append(bySup[li.Supplier.Name], li.Part.PartID)
			all = append(all, li.Part.PartID)
		}
	}
	return bySup, all
}

// CustomersPerSupplierBaseline runs query 1 and returns supplier→customer
// count (the evaluation-forcing count).
func (b *BaselineData) CustomersPerSupplierBaseline() (map[string]int, error) {
	ds, err := b.dataset()
	if err != nil {
		return nil, err
	}
	infos := ds.FlatMap(func(r baseline.Record) []baseline.Record {
		c := r.(GCustomer)
		bySup, _ := gCustomerParts(&c)
		out := make([]baseline.Record, 0, len(bySup))
		for sup, parts := range bySup {
			out = append(out, SupInfoRec{Sup: sup, Cust: c.Name, Parts: parts})
		}
		return out
	})
	grouped, err := infos.Map(func(r baseline.Record) baseline.Record {
		in := r.(SupInfoRec)
		return SupAggRec{Sup: in.Sup, CustParts: map[string][]int64{in.Cust: in.Parts}}
	}).ReduceByKey(
		func(r baseline.Record) interface{} { return r.(SupAggRec).Sup },
		func(a, bb baseline.Record) baseline.Record {
			l, r := a.(SupAggRec), bb.(SupAggRec)
			for cust, parts := range r.CustParts {
				l.CustParts[cust] = append(l.CustParts[cust], parts...)
			}
			return l
		})
	if err != nil {
		return nil, err
	}
	out := map[string]int{}
	for _, r := range grouped.Collect() {
		agg := r.(SupAggRec)
		out[agg.Sup] = len(agg.CustParts)
	}
	return out, nil
}

// purchases flattens the customer graph into the flat purchase dataset
// (the baseline's FlattenPurchasesPC).
func (b *BaselineData) purchases() (*baseline.Dataset, error) {
	ds, err := b.dataset()
	if err != nil {
		return nil, err
	}
	return ds.FlatMap(func(r baseline.Record) []baseline.Record {
		c := r.(GCustomer)
		var out []baseline.Record
		for i := range c.Orders {
			for j := range c.Orders[i].LineItems {
				li := &c.Orders[i].LineItems[j]
				out = append(out, PurchaseRec{
					CustKey: c.CustKey, PartID: li.Part.PartID, SupKey: li.Supplier.SupKey})
			}
		}
		return out
	}), nil
}

// TopCustomersByVolumeBaseline mirrors TopCustomersByVolumePC: the k
// customers with the most lineitems, (volume desc, custkey asc).
func (b *BaselineData) TopCustomersByVolumeBaseline(k int) ([]int64, error) {
	ds, err := b.dataset()
	if err != nil {
		return nil, err
	}
	volume := func(r baseline.Record) int {
		c := r.(GCustomer)
		_, all := gCustomerParts(&c)
		return len(all)
	}
	sorted := ds.SortBy(func(a, bb baseline.Record) bool {
		va, vb := volume(a), volume(bb)
		if va != vb {
			return va > vb
		}
		return a.(GCustomer).CustKey < bb.(GCustomer).CustKey
	}, k)
	var keys []int64
	for _, r := range sorted.Collect() {
		keys = append(keys, r.(GCustomer).CustKey)
	}
	return keys, nil
}

// DistinctPartsSoldBaseline mirrors DistinctPartsSoldPC.
func (b *BaselineData) DistinctPartsSoldBaseline() ([]int64, error) {
	ds, err := b.purchases()
	if err != nil {
		return nil, err
	}
	distinct, err := ds.DistinctBy(func(r baseline.Record) interface{} { return r.(PurchaseRec).PartID })
	if err != nil {
		return nil, err
	}
	var ids []int64
	for _, r := range distinct.Collect() {
		ids = append(ids, r.(PurchaseRec).PartID)
	}
	return ids, nil
}

// PromoPurchasesBaseline mirrors PromoPurchasesPC: keep=true is the semi
// join (purchases of promoted parts), keep=false the anti join.
func (b *BaselineData) PromoPurchasesBaseline(promo []int64, keep bool) ([]PurchaseRec, error) {
	ds, err := b.purchases()
	if err != nil {
		return nil, err
	}
	promoRecs := make([]baseline.Record, len(promo))
	for i, id := range promo {
		promoRecs[i] = PromoPartRec{PartID: id}
	}
	right := b.Ctx.Parallelize(promoRecs)
	keyL := func(r baseline.Record) interface{} { return r.(PurchaseRec).PartID }
	keyR := func(r baseline.Record) interface{} { return r.(PromoPartRec).PartID }
	var joined *baseline.Dataset
	if keep {
		joined, err = ds.SemiJoin(right, keyL, keyR)
	} else {
		joined, err = ds.AntiJoin(right, keyL, keyR)
	}
	if err != nil {
		return nil, err
	}
	var rows []PurchaseRec
	for _, r := range joined.Collect() {
		rows = append(rows, r.(PurchaseRec))
	}
	return rows, nil
}

// TopKJaccardBaseline runs query 2.
func (b *BaselineData) TopKJaccardBaseline(k int, query []int64) ([]TopJaccardEntry, error) {
	queryList := stat.Dedup(append([]int64(nil), query...))
	ds, err := b.dataset()
	if err != nil {
		return nil, err
	}
	scored := ds.Map(func(r baseline.Record) baseline.Record {
		c := r.(GCustomer)
		_, parts := gCustomerParts(&c)
		sim := stat.Jaccard(stat.Dedup(parts), queryList)
		return TopKRec{K: k, Entries: []TopJaccardEntry{{Similarity: sim, CustKey: c.CustKey}}}
	})
	merged, err := scored.ReduceByKey(
		func(baseline.Record) interface{} { return 0 },
		func(a, bb baseline.Record) baseline.Record {
			l, r := a.(TopKRec), bb.(TopKRec)
			all := append(append([]TopJaccardEntry(nil), l.Entries...), r.Entries...)
			sort.Slice(all, func(i, j int) bool {
				if all[i].Similarity != all[j].Similarity {
					return all[i].Similarity > all[j].Similarity
				}
				return all[i].CustKey < all[j].CustKey
			})
			if len(all) > k {
				all = all[:k]
			}
			return TopKRec{K: k, Entries: all}
		})
	if err != nil {
		return nil, err
	}
	var out []TopJaccardEntry
	for _, r := range merged.Collect() {
		out = append(out, r.(TopKRec).Entries...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		return out[i].CustKey < out[j].CustKey
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}
