package tpch

import (
	"sort"

	"repro/internal/baseline"
	"repro/internal/stat"
)

// Baseline (Spark-analogue) implementations of the two §8.4 computations,
// algorithmically equivalent to the PC versions. Two storage modes match
// Table 3's rows: hot storage (read + full deserialization per run) and
// in-RAM deserialized (persisted dataset).

// Mode selects the baseline's data residence.
type Mode int

// Baseline storage modes.
const (
	ModeHotStorage Mode = iota // "Spark: hot HDFS"
	ModeInRAM                  // "Spark: in-RAM deserialized RDD"
)

// SupInfoRec is the flat-mapped per-(customer, supplier) record.
type SupInfoRec struct {
	Sup   string
	Cust  string
	Parts []int64
}

// SupAggRec is the grouped result: supplier → customer → parts.
type SupAggRec struct {
	Sup       string
	CustParts map[string][]int64
}

// TopKRec is the top-k accumulator record.
type TopKRec struct {
	K       int
	Entries []TopJaccardEntry
}

func init() {
	baseline.Register(GCustomer{})
	baseline.Register(SupInfoRec{})
	baseline.Register(SupAggRec{})
	baseline.Register(TopKRec{})
}

// BaselineData owns the baseline context and the loaded dataset.
type BaselineData struct {
	Ctx  *baseline.Context
	Mode Mode

	ram *baseline.Dataset
}

// LoadBaseline stores the customers in the baseline's storage service and,
// for ModeInRAM, pre-deserializes and persists them (the paper's
// distinct().count() warm-up).
func LoadBaseline(executors int, mode Mode, customers []GCustomer) (*BaselineData, error) {
	ctx := baseline.NewContext(executors)
	recs := make([]baseline.Record, len(customers))
	for i := range customers {
		recs[i] = customers[i]
	}
	if err := ctx.Store("customers", ctx.Parallelize(recs)); err != nil {
		return nil, err
	}
	bd := &BaselineData{Ctx: ctx, Mode: mode}
	if mode == ModeInRAM {
		ds, err := ctx.Read("customers")
		if err != nil {
			return nil, err
		}
		bd.ram = ds.Persist()
	}
	return bd, nil
}

// dataset returns the input dataset, paying the mode's access cost.
func (b *BaselineData) dataset() (*baseline.Dataset, error) {
	if b.Mode == ModeInRAM {
		return b.ram.Reuse()
	}
	return b.Ctx.Read("customers") // full decode every run
}

// gCustomerParts mirrors Schema.CustomerParts for the struct form.
func gCustomerParts(c *GCustomer) (bySup map[string][]int64, all []int64) {
	bySup = map[string][]int64{}
	for i := range c.Orders {
		for j := range c.Orders[i].LineItems {
			li := &c.Orders[i].LineItems[j]
			bySup[li.Supplier.Name] = append(bySup[li.Supplier.Name], li.Part.PartID)
			all = append(all, li.Part.PartID)
		}
	}
	return bySup, all
}

// CustomersPerSupplierBaseline runs query 1 and returns supplier→customer
// count (the evaluation-forcing count).
func (b *BaselineData) CustomersPerSupplierBaseline() (map[string]int, error) {
	ds, err := b.dataset()
	if err != nil {
		return nil, err
	}
	infos := ds.FlatMap(func(r baseline.Record) []baseline.Record {
		c := r.(GCustomer)
		bySup, _ := gCustomerParts(&c)
		out := make([]baseline.Record, 0, len(bySup))
		for sup, parts := range bySup {
			out = append(out, SupInfoRec{Sup: sup, Cust: c.Name, Parts: parts})
		}
		return out
	})
	grouped, err := infos.Map(func(r baseline.Record) baseline.Record {
		in := r.(SupInfoRec)
		return SupAggRec{Sup: in.Sup, CustParts: map[string][]int64{in.Cust: in.Parts}}
	}).ReduceByKey(
		func(r baseline.Record) interface{} { return r.(SupAggRec).Sup },
		func(a, bb baseline.Record) baseline.Record {
			l, r := a.(SupAggRec), bb.(SupAggRec)
			for cust, parts := range r.CustParts {
				l.CustParts[cust] = append(l.CustParts[cust], parts...)
			}
			return l
		})
	if err != nil {
		return nil, err
	}
	out := map[string]int{}
	for _, r := range grouped.Collect() {
		agg := r.(SupAggRec)
		out[agg.Sup] = len(agg.CustParts)
	}
	return out, nil
}

// TopKJaccardBaseline runs query 2.
func (b *BaselineData) TopKJaccardBaseline(k int, query []int64) ([]TopJaccardEntry, error) {
	queryList := stat.Dedup(append([]int64(nil), query...))
	ds, err := b.dataset()
	if err != nil {
		return nil, err
	}
	scored := ds.Map(func(r baseline.Record) baseline.Record {
		c := r.(GCustomer)
		_, parts := gCustomerParts(&c)
		sim := stat.Jaccard(stat.Dedup(parts), queryList)
		return TopKRec{K: k, Entries: []TopJaccardEntry{{Similarity: sim, CustKey: c.CustKey}}}
	})
	merged, err := scored.ReduceByKey(
		func(baseline.Record) interface{} { return 0 },
		func(a, bb baseline.Record) baseline.Record {
			l, r := a.(TopKRec), bb.(TopKRec)
			all := append(append([]TopJaccardEntry(nil), l.Entries...), r.Entries...)
			sort.Slice(all, func(i, j int) bool {
				if all[i].Similarity != all[j].Similarity {
					return all[i].Similarity > all[j].Similarity
				}
				return all[i].CustKey < all[j].CustKey
			})
			if len(all) > k {
				all = all[:k]
			}
			return TopKRec{K: k, Entries: all}
		})
	if err != nil {
		return nil, err
	}
	var out []TopJaccardEntry
	for _, r := range merged.Collect() {
		out = append(out, r.(TopKRec).Entries...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		return out[i].CustKey < out[j].CustKey
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}
