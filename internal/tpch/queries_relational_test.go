package tpch

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/pc"
)

// The relational-surface differential tests: each new query (ORDER BY +
// limit, DISTINCT, semi/anti join) runs on PC and on the baseline engine
// over the identical generated instance, and both must agree with a direct
// struct-level reference.

func loadRelational(t testing.TB, n int) (*pc.Client, *Schema, *pc.TypeInfo, []GCustomer) {
	t.Helper()
	client, s, data := loadBoth(t, n)
	purchase := RegisterPurchase(client.Registry())
	if err := FlattenPurchasesPC(client, s, purchase, "TPCH_db", "tpch_bench_set1", "purchases"); err != nil {
		t.Fatal(err)
	}
	return client, s, purchase, data
}

// referencePurchases flattens the struct form directly.
func referencePurchases(data []GCustomer) []PurchaseRec {
	var out []PurchaseRec
	for i := range data {
		c := &data[i]
		for j := range c.Orders {
			for k := range c.Orders[j].LineItems {
				li := &c.Orders[j].LineItems[k]
				out = append(out, PurchaseRec{CustKey: c.CustKey, PartID: li.Part.PartID, SupKey: li.Supplier.SupKey})
			}
		}
	}
	return out
}

func sortPurchases(rows []PurchaseRec) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].CustKey != rows[j].CustKey {
			return rows[i].CustKey < rows[j].CustKey
		}
		if rows[i].PartID != rows[j].PartID {
			return rows[i].PartID < rows[j].PartID
		}
		return rows[i].SupKey < rows[j].SupKey
	})
}

func sortedI64(ids []int64) []int64 {
	out := append([]int64(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestFlattenPurchasesMatchesReference(t *testing.T) {
	client, _, purchase, data := loadRelational(t, 40)
	var got []PurchaseRec
	if err := client.ScanSet("TPCH_db", "purchases", func(r pc.Ref) bool {
		got = append(got, readPurchase(purchase, r))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := referencePurchases(data)
	sortPurchases(got)
	sortPurchases(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("flattened purchases = %d rows, reference %d rows", len(got), len(want))
	}
}

func TestTopCustomersByVolumePCMatchesBaseline(t *testing.T) {
	client, s, _, data := loadRelational(t, 70)
	const k = 9
	got, err := TopCustomersByVolumePC(client, s, "TPCH_db", "tpch_bench_set1", "q_topvol", k)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := LoadBaseline(3, ModeInRAM, data)
	if err != nil {
		t.Fatal(err)
	}
	want, err := bd.TopCustomersByVolumeBaseline(k)
	if err != nil {
		t.Fatal(err)
	}
	// (volume desc, custkey asc) is a total order: the sequences must be
	// identical, not just the sets.
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PC top-%d = %v\nbaseline = %v", k, got, want)
	}
	if len(got) != k {
		t.Errorf("top-k returned %d rows, want %d", len(got), k)
	}
}

func TestDistinctPartsSoldPCMatchesBaseline(t *testing.T) {
	client, _, purchase, data := loadRelational(t, 60)
	got, err := DistinctPartsSoldPC(client, purchase, "TPCH_db", "purchases", "q_distinct")
	if err != nil {
		t.Fatal(err)
	}
	bd, err := LoadBaseline(3, ModeInRAM, data)
	if err != nil {
		t.Fatal(err)
	}
	want, err := bd.DistinctPartsSoldBaseline()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sortedI64(got), sortedI64(want)) {
		t.Errorf("PC distinct parts = %v\nbaseline = %v", sortedI64(got), sortedI64(want))
	}
	seen := map[int64]bool{}
	for _, id := range got {
		if seen[id] {
			t.Errorf("part %d emitted twice", id)
		}
		seen[id] = true
	}
}

func TestPromoPurchasesSemiAntiMatchBaseline(t *testing.T) {
	client, s, purchase, data := loadRelational(t, 60)
	promo := []int64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}
	if err := LoadPromoParts(client, s, "TPCH_db", "promo", promo); err != nil {
		t.Fatal(err)
	}
	bd, err := LoadBaseline(3, ModeInRAM, data)
	if err != nil {
		t.Fatal(err)
	}
	all := referencePurchases(data)
	for _, tc := range []struct {
		name string
		kind pc.JoinKind
		keep bool
	}{
		{"semi", pc.JoinSemi, true},
		{"anti", pc.JoinAnti, false},
	} {
		got, err := PromoPurchasesPC(client, purchase, tc.kind, "TPCH_db", "purchases", "promo", "q_"+tc.name)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want, err := bd.PromoPurchasesBaseline(promo, tc.keep)
		if err != nil {
			t.Fatalf("%s baseline: %v", tc.name, err)
		}
		sortPurchases(got)
		sortPurchases(want)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s join: PC %d rows, baseline %d rows", tc.name, len(got), len(want))
		}
	}
	// The semi and anti outputs partition the purchase set.
	semi, _ := PromoPurchasesPC(client, purchase, pc.JoinSemi, "TPCH_db", "purchases", "promo", "q_part1")
	anti, _ := PromoPurchasesPC(client, purchase, pc.JoinAnti, "TPCH_db", "purchases", "promo", "q_part2")
	if len(semi)+len(anti) != len(all) {
		t.Errorf("semi (%d) + anti (%d) != all purchases (%d)", len(semi), len(anti), len(all))
	}
}

// TestContinuousIngestion runs SendData concurrently with queries: a
// loader goroutine appends customer batches to a live set while a query
// goroutine repeatedly runs the distributed top-k over it. Every
// mid-ingestion query must succeed and return well-formed results; after
// the loader drains, the final result must equal the full-data reference.
// The race-detector CI profile runs this test under -race.
func TestContinuousIngestion(t *testing.T) {
	const (
		batches   = 8
		perBatch  = 25
		k         = 6
		midProbes = 12
	)
	data := Generate(testParams(batches * perBatch))
	client, err := pc.Connect(pc.Config{Workers: 3, PageSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	s := RegisterSchema(client.Registry())
	if err := client.CreateDatabase("TPCH_db"); err != nil {
		t.Fatal(err)
	}
	if err := client.CreateSet("TPCH_db", "live", "Customer"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	loadErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		for b := 0; b < batches; b++ {
			batch := data[b*perBatch : (b+1)*perBatch]
			pages, err := client.BuildPages(len(batch), func(a *pc.Allocator, i int) (pc.Ref, error) {
				return s.buildCustomer(a, &batch[i])
			})
			if err != nil {
				loadErr <- fmt.Errorf("batch %d build: %w", b, err)
				return
			}
			if err := client.SendData("TPCH_db", "live", pages); err != nil {
				loadErr <- fmt.Errorf("batch %d send: %w", b, err)
				return
			}
		}
		loadErr <- nil
	}()

	// Queries race the loader: each observes some prefix of the ingested
	// pages and must still produce a well-formed, duplicate-free top-k.
	for probe := 0; probe < midProbes; probe++ {
		out := fmt.Sprintf("probe_%d", probe)
		keys, err := TopCustomersByVolumePC(client, s, "TPCH_db", "live", out, k)
		if err != nil {
			t.Fatalf("probe %d: %v", probe, err)
		}
		if len(keys) > k {
			t.Fatalf("probe %d returned %d rows, limit %d", probe, len(keys), k)
		}
		seen := map[int64]bool{}
		for _, key := range keys {
			if seen[key] {
				t.Fatalf("probe %d emitted custkey %d twice", probe, key)
			}
			seen[key] = true
		}
	}
	wg.Wait()
	if err := <-loadErr; err != nil {
		t.Fatal(err)
	}

	// Quiescent: the final query sees all batches and must match the
	// baseline over the full instance exactly.
	got, err := TopCustomersByVolumePC(client, s, "TPCH_db", "live", "probe_final", k)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := LoadBaseline(3, ModeInRAM, data)
	if err != nil {
		t.Fatal(err)
	}
	want, err := bd.TopCustomersByVolumeBaseline(k)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-ingestion top-%d = %v\nwant %v", k, got, want)
	}
	count, err := client.CountSet("TPCH_db", "live")
	if err != nil {
		t.Fatal(err)
	}
	if count != batches*perBatch {
		t.Errorf("ingested %d customers, want %d", count, batches*perBatch)
	}
}
