// Package tpch implements the paper's §8.4 "Big Object-Oriented Data"
// benchmark: the TPC-H database denormalized into deeply nested Customer
// objects (Customer → Orders → Lineitems → Part/Supplier), plus the two
// analytical computations run over it — customers-per-supplier and top-k
// Jaccard — each implemented both on PC (nested PC objects, zero-copy
// pages) and on the baseline engine (boxed structs, gob boundaries).
package tpch

import (
	"fmt"
	"math/rand"

	"repro/internal/object"
	"repro/pc"
)

// Params sizes a synthetic denormalized TPC-H instance (scaled from the
// paper's 2.4M–24M customers; distributions keep the same shape: a few
// orders per customer, a few lineitems per order, parts and suppliers drawn
// uniformly).
type Params struct {
	Customers    int
	OrdersPerC   int
	ItemsPerO    int
	NumParts     int
	NumSuppliers int
	Seed         int64
}

// Fill applies defaults.
func (p *Params) Fill() {
	if p.OrdersPerC <= 0 {
		p.OrdersPerC = 3
	}
	if p.ItemsPerO <= 0 {
		p.ItemsPerO = 4
	}
	if p.NumParts <= 0 {
		p.NumParts = 200
	}
	if p.NumSuppliers <= 0 {
		p.NumSuppliers = 25
	}
}

// Go-struct form (shared source of truth; the PC loader and the baseline
// loader both consume it so both engines see identical data).

// GPart is a part row.
type GPart struct {
	PartID int64
	Name   string
	Mfgr   string
}

// GSupplier is a supplier row.
type GSupplier struct {
	SupKey int64
	Name   string
}

// GLineitem nests its part and supplier (denormalized).
type GLineitem struct {
	OrderKey   int64
	LineNumber int64
	Supplier   GSupplier
	Part       GPart
}

// GOrder nests its lineitems.
type GOrder struct {
	OrderKey  int64
	CustKey   int64
	LineItems []GLineitem
}

// GCustomer nests all of a customer's orders.
type GCustomer struct {
	CustKey int64
	Name    string
	Orders  []GOrder
}

// Generate builds the synthetic denormalized instance.
func Generate(p Params) []GCustomer {
	p.Fill()
	rng := rand.New(rand.NewSource(p.Seed))
	out := make([]GCustomer, p.Customers)
	orderKey := int64(0)
	for c := 0; c < p.Customers; c++ {
		cust := GCustomer{CustKey: int64(c), Name: fmt.Sprintf("Customer#%06d", c)}
		nOrders := 1 + rng.Intn(p.OrdersPerC*2-1) // mean ≈ OrdersPerC
		for o := 0; o < nOrders; o++ {
			orderKey++
			ord := GOrder{OrderKey: orderKey, CustKey: cust.CustKey}
			nItems := 1 + rng.Intn(p.ItemsPerO*2-1)
			for l := 0; l < nItems; l++ {
				supID := int64(rng.Intn(p.NumSuppliers))
				partID := int64(rng.Intn(p.NumParts))
				ord.LineItems = append(ord.LineItems, GLineitem{
					OrderKey:   orderKey,
					LineNumber: int64(l),
					Supplier:   GSupplier{SupKey: supID, Name: fmt.Sprintf("Supplier#%04d", supID)},
					Part:       GPart{PartID: partID, Name: fmt.Sprintf("Part#%05d", partID), Mfgr: fmt.Sprintf("Mfgr#%d", partID%5)},
				})
			}
			cust.Orders = append(cust.Orders, ord)
		}
		out[c] = cust
	}
	return out
}

// Schema holds the registered PC types of the denormalized schema.
type Schema struct {
	Part, Supplier, Lineitem, Order, Customer *pc.TypeInfo
	SupplierInfo                              *pc.TypeInfo
	TopK                                      *pc.TypeInfo
}

// RegisterSchema registers all PC object types (paper §8.4.1's class
// definitions).
func RegisterSchema(reg *object.Registry) *Schema {
	s := &Schema{}
	s.Part = object.NewStruct("Part").
		AddField("partID", pc.KInt64).
		AddField("name", pc.KString).
		AddField("mfgr", pc.KString).
		MustBuild(reg)
	s.Supplier = object.NewStruct("Supplier").
		AddField("supkey", pc.KInt64).
		AddField("name", pc.KString).
		MustBuild(reg)
	s.Lineitem = object.NewStruct("Lineitem").
		AddField("orderKey", pc.KInt64).
		AddField("lineNumber", pc.KInt64).
		AddField("supplier", pc.KHandle).
		AddField("part", pc.KHandle).
		MustBuild(reg)
	s.Order = object.NewStruct("Order").
		AddField("orderkey", pc.KInt64).
		AddField("custkey", pc.KInt64).
		AddField("lineItems", pc.KHandle). // Vector<Handle<Lineitem>>
		MustBuild(reg)
	s.Customer = object.NewStruct("Customer").
		AddField("custkey", pc.KInt64).
		AddField("name", pc.KString).
		AddField("orders", pc.KHandle). // Vector<Handle<Order>>
		MustBuild(reg)
	// Query result types.
	s.SupplierInfo = object.NewStruct("SupplierInfo").
		AddField("supName", pc.KString).
		AddField("custParts", pc.KHandle). // Map<String, Handle<Vector<int64>>>
		MustBuild(reg)
	s.TopK = object.NewStruct("TopKQueue").
		AddField("k", pc.KInt64).
		AddField("entries", pc.KHandle). // Vector<float64>: (sim, custkey)*
		MustBuild(reg)
	return s
}

// buildCustomer allocates one denormalized customer graph in place.
func (s *Schema) buildCustomer(a *pc.Allocator, g *GCustomer) (pc.Ref, error) {
	cust, err := a.MakeObject(s.Customer)
	if err != nil {
		return pc.Ref{}, err
	}
	object.SetI64(cust, s.Customer.Field("custkey"), g.CustKey)
	if err := object.SetStrField(a, cust, s.Customer.Field("name"), g.Name); err != nil {
		return pc.Ref{}, err
	}
	orders, err := pc.MakeVector(a, pc.KHandle, len(g.Orders))
	if err != nil {
		return pc.Ref{}, err
	}
	for i := range g.Orders {
		go_ := &g.Orders[i]
		ord, err := a.MakeObject(s.Order)
		if err != nil {
			return pc.Ref{}, err
		}
		object.SetI64(ord, s.Order.Field("orderkey"), go_.OrderKey)
		object.SetI64(ord, s.Order.Field("custkey"), go_.CustKey)
		items, err := pc.MakeVector(a, pc.KHandle, len(go_.LineItems))
		if err != nil {
			return pc.Ref{}, err
		}
		for j := range go_.LineItems {
			gl := &go_.LineItems[j]
			li, err := a.MakeObject(s.Lineitem)
			if err != nil {
				return pc.Ref{}, err
			}
			object.SetI64(li, s.Lineitem.Field("orderKey"), gl.OrderKey)
			object.SetI64(li, s.Lineitem.Field("lineNumber"), gl.LineNumber)
			sup, err := a.MakeObject(s.Supplier)
			if err != nil {
				return pc.Ref{}, err
			}
			object.SetI64(sup, s.Supplier.Field("supkey"), gl.Supplier.SupKey)
			if err := object.SetStrField(a, sup, s.Supplier.Field("name"), gl.Supplier.Name); err != nil {
				return pc.Ref{}, err
			}
			if err := object.SetHandleField(a, li, s.Lineitem.Field("supplier"), sup); err != nil {
				return pc.Ref{}, err
			}
			part, err := a.MakeObject(s.Part)
			if err != nil {
				return pc.Ref{}, err
			}
			object.SetI64(part, s.Part.Field("partID"), gl.Part.PartID)
			if err := object.SetStrField(a, part, s.Part.Field("name"), gl.Part.Name); err != nil {
				return pc.Ref{}, err
			}
			if err := object.SetStrField(a, part, s.Part.Field("mfgr"), gl.Part.Mfgr); err != nil {
				return pc.Ref{}, err
			}
			if err := object.SetHandleField(a, li, s.Lineitem.Field("part"), part); err != nil {
				return pc.Ref{}, err
			}
			if err := items.PushBackHandle(a, li); err != nil {
				return pc.Ref{}, err
			}
		}
		if err := object.SetHandleField(a, ord, s.Order.Field("lineItems"), items.Ref); err != nil {
			return pc.Ref{}, err
		}
		if err := orders.PushBackHandle(a, ord); err != nil {
			return pc.Ref{}, err
		}
	}
	if err := object.SetHandleField(a, cust, s.Customer.Field("orders"), orders.Ref); err != nil {
		return pc.Ref{}, err
	}
	return cust, nil
}

// LoadPC loads the generated customers into a PC set.
func (s *Schema) LoadPC(client *pc.Client, db, set string, customers []GCustomer) error {
	if err := client.CreateSet(db, set, "Customer"); err != nil {
		return err
	}
	pages, err := client.BuildPages(len(customers), func(a *pc.Allocator, i int) (pc.Ref, error) {
		return s.buildCustomer(a, &customers[i])
	})
	if err != nil {
		return err
	}
	return client.SendData(db, set, pages)
}

// CustomerParts walks a PC Customer graph collecting (supplierName →
// partIDs) and the deduplicated partID set (shared by both queries).
func (s *Schema) CustomerParts(cust pc.Ref) (name string, bySup map[string][]int64, allParts []int64) {
	name = object.GetStrField(cust, s.Customer.Field("name"))
	bySup = map[string][]int64{}
	orders := object.AsVector(object.GetHandleField(cust, s.Customer.Field("orders")))
	for i := 0; i < orders.Len(); i++ {
		items := object.AsVector(object.GetHandleField(orders.HandleAt(i), s.Order.Field("lineItems")))
		for j := 0; j < items.Len(); j++ {
			li := items.HandleAt(j)
			sup := object.GetHandleField(li, s.Lineitem.Field("supplier"))
			part := object.GetHandleField(li, s.Lineitem.Field("part"))
			supName := object.GetStrField(sup, s.Supplier.Field("name"))
			partID := object.GetI64(part, s.Part.Field("partID"))
			bySup[supName] = append(bySup[supName], partID)
			allParts = append(allParts, partID)
		}
	}
	return name, bySup, allParts
}
