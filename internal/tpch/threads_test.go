package tpch

import (
	"reflect"
	"testing"

	"repro/pc"
)

// TestCustomersPerSupplierDeterministicAcrossThreads runs the paper's
// §8.4.2 TPC-H workload under intra-worker parallelism and asserts the
// result is byte-identical for Threads = 1, 2, 8: the customer counts per
// supplier are integers, so parallel pre-aggregation and the per-thread
// sink-merge protocol must not change a single entry.
func TestCustomersPerSupplierDeterministicAcrossThreads(t *testing.T) {
	data := Generate(testParams(120))
	var want map[string]int
	for _, th := range []int{1, 2, 8} {
		client, err := pc.Connect(pc.Config{Workers: 3, Threads: th, PageSize: 1 << 18})
		if err != nil {
			t.Fatal(err)
		}
		s := RegisterSchema(client.Registry())
		if err := client.CreateDatabase("TPCH_db"); err != nil {
			t.Fatal(err)
		}
		if err := s.LoadPC(client, "TPCH_db", "set1", data); err != nil {
			t.Fatal(err)
		}
		if err := CustomersPerSupplierPC(client, s, "TPCH_db", "set1", "q1"); err != nil {
			t.Fatalf("threads=%d: %v", th, err)
		}
		got, err := CountCustomersPerSupplierPC(client, s, "TPCH_db", "q1")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			t.Fatalf("threads=%d: empty result", th)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("threads=%d: customers-per-supplier differs from threads=1", th)
		}
	}
}

// TestTopKJaccardDeterministicAcrossThreads covers the second §8.4.2 query:
// top-k Jaccard similarity. Similarities are ratios of small integers
// computed per customer (never re-accumulated across threads), so the
// returned ranking must match exactly at every thread count.
func TestTopKJaccardDeterministicAcrossThreads(t *testing.T) {
	data := Generate(testParams(80))
	query := []int64{1, 5, 9, 13, 17, 21}
	var want []TopJaccardEntry
	for _, th := range []int{1, 2, 8} {
		client, err := pc.Connect(pc.Config{Workers: 3, Threads: th, PageSize: 1 << 18})
		if err != nil {
			t.Fatal(err)
		}
		s := RegisterSchema(client.Registry())
		if err := client.CreateDatabase("TPCH_db"); err != nil {
			t.Fatal(err)
		}
		if err := s.LoadPC(client, "TPCH_db", "set1", data); err != nil {
			t.Fatal(err)
		}
		got, err := TopKJaccardPC(client, s, "TPCH_db", "set1", "topk", 8, query)
		if err != nil {
			t.Fatalf("threads=%d: %v", th, err)
		}
		if len(got) == 0 {
			t.Fatalf("threads=%d: empty top-k", th)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("threads=%d: top-k ranking differs from threads=1:\n%v\nvs\n%v", th, got, want)
		}
	}
}
