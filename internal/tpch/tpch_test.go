package tpch

import (
	"reflect"
	"testing"

	"repro/pc"
)

func testParams(n int) Params {
	return Params{Customers: n, OrdersPerC: 2, ItemsPerO: 3, NumParts: 40, NumSuppliers: 6, Seed: 42}
}

func TestGenerateShape(t *testing.T) {
	data := Generate(testParams(50))
	if len(data) != 50 {
		t.Fatalf("customers = %d", len(data))
	}
	totalItems := 0
	for _, c := range data {
		if len(c.Orders) == 0 {
			t.Fatalf("customer %d has no orders", c.CustKey)
		}
		for _, o := range c.Orders {
			if o.CustKey != c.CustKey {
				t.Error("order custkey mismatch")
			}
			totalItems += len(o.LineItems)
			for _, li := range o.LineItems {
				if li.Part.PartID < 0 || li.Part.PartID >= 40 {
					t.Error("partID out of range")
				}
				if li.Supplier.SupKey < 0 || li.Supplier.SupKey >= 6 {
					t.Error("supkey out of range")
				}
			}
		}
	}
	if totalItems == 0 {
		t.Fatal("no lineitems generated")
	}
	// Determinism.
	again := Generate(testParams(50))
	if !reflect.DeepEqual(data[:5], again[:5]) {
		t.Error("generation is not deterministic for a fixed seed")
	}
}

func loadBoth(t testing.TB, n int) (*pc.Client, *Schema, []GCustomer) {
	t.Helper()
	data := Generate(testParams(n))
	client, err := pc.Connect(pc.Config{Workers: 3, PageSize: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	s := RegisterSchema(client.Registry())
	if err := client.CreateDatabase("TPCH_db"); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadPC(client, "TPCH_db", "tpch_bench_set1", data); err != nil {
		t.Fatal(err)
	}
	return client, s, data
}

func TestPCLoadPreservesNestedGraph(t *testing.T) {
	client, s, data := loadBoth(t, 30)
	count, err := client.CountSet("TPCH_db", "tpch_bench_set1")
	if err != nil {
		t.Fatal(err)
	}
	if count != 30 {
		t.Fatalf("stored customers = %d", count)
	}
	// Spot-check the nested structure through the object model.
	wantParts := map[string]int{}
	for _, c := range data {
		_, all := gCustomerParts(&c)
		wantParts[c.Name] = len(all)
	}
	err = client.ScanSet("TPCH_db", "tpch_bench_set1", func(r pc.Ref) bool {
		name, _, all := s.CustomerParts(r)
		if len(all) != wantParts[name] {
			t.Errorf("customer %s has %d parts, want %d", name, len(all), wantParts[name])
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

// referenceCustomersPerSupplier computes query 1 directly on the structs.
func referenceCustomersPerSupplier(data []GCustomer) map[string]int {
	perSup := map[string]map[string]bool{}
	for i := range data {
		bySup, _ := gCustomerParts(&data[i])
		for sup := range bySup {
			if perSup[sup] == nil {
				perSup[sup] = map[string]bool{}
			}
			perSup[sup][data[i].Name] = true
		}
	}
	out := map[string]int{}
	for sup, custs := range perSup {
		out[sup] = len(custs)
	}
	return out
}

func TestCustomersPerSupplierPCMatchesReference(t *testing.T) {
	client, s, data := loadBoth(t, 60)
	if err := CustomersPerSupplierPC(client, s, "TPCH_db", "tpch_bench_set1", "q1_out"); err != nil {
		t.Fatal(err)
	}
	got, err := CountCustomersPerSupplierPC(client, s, "TPCH_db", "q1_out")
	if err != nil {
		t.Fatal(err)
	}
	want := referenceCustomersPerSupplier(data)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PC customers-per-supplier = %v\nwant %v", got, want)
	}
}

func TestCustomersPerSupplierBaselineMatchesPC(t *testing.T) {
	_, _, data := loadBoth(t, 60)
	want := referenceCustomersPerSupplier(data)
	for _, mode := range []Mode{ModeHotStorage, ModeInRAM} {
		bd, err := LoadBaseline(3, mode, data)
		if err != nil {
			t.Fatal(err)
		}
		got, err := bd.CustomersPerSupplierBaseline()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("mode %d: baseline = %v, want %v", mode, got, want)
		}
	}
}

func TestTopKJaccardPCMatchesBaseline(t *testing.T) {
	client, s, data := loadBoth(t, 80)
	query := []int64{1, 5, 9, 13, 17, 21, 25, 29, 33, 37}
	const k = 7

	pcRes, err := TopKJaccardPC(client, s, "TPCH_db", "tpch_bench_set1", "q2_out", k, query)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := LoadBaseline(3, ModeInRAM, data)
	if err != nil {
		t.Fatal(err)
	}
	blRes, err := bd.TopKJaccardBaseline(k, query)
	if err != nil {
		t.Fatal(err)
	}
	if len(pcRes) != k || len(blRes) != k {
		t.Fatalf("result sizes %d/%d, want %d", len(pcRes), len(blRes), k)
	}
	if !reflect.DeepEqual(pcRes, blRes) {
		t.Errorf("PC and baseline disagree:\nPC: %v\nBL: %v", pcRes, blRes)
	}
	// Results are sorted by similarity descending.
	for i := 1; i < len(pcRes); i++ {
		if pcRes[i].Similarity > pcRes[i-1].Similarity {
			t.Error("top-k not sorted")
		}
	}
}

func TestBaselinePaysSerializationPCDoesNot(t *testing.T) {
	// The benchmark's central claim at the primitive level: running the
	// same query, the baseline performs gob work proportional to the
	// data; PC ships pages without any encode/decode step.
	_, _, data := loadBoth(t, 40)
	bd, err := LoadBaseline(3, ModeHotStorage, data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bd.CustomersPerSupplierBaseline(); err != nil {
		t.Fatal(err)
	}
	if bd.Ctx.Stats.DeserializeOps == 0 || bd.Ctx.Stats.SerializedBytes == 0 {
		t.Error("hot-storage baseline should pay (de)serialization")
	}
}
