package tpch

import (
	"sort"

	"repro/internal/object"
	"repro/internal/stat"
	"repro/pc"
)

// The two §8.4.2 computations on PC.

// CustomersPerSupplierPC computes, for each supplier, the map from customer
// name to the list of partIDs that supplier sold them. Structure follows
// the paper exactly: a CustomerMultiSelection transforms each Customer into
// one SupplierInfo per supplier, and a CustomerSupplierPartGroupBy
// aggregates them by supplier name, merging the per-customer maps.
func CustomersPerSupplierPC(client *pc.Client, s *Schema, db, inSet, outSet string) error {
	msel := &pc.MultiSelection{
		In:      pc.NewScan(db, inSet, "Customer"),
		ArgType: "Customer",
		Projection: func(arg *pc.Arg) pc.Term {
			return pc.FromNative("toSupplierInfos", pc.KHandle,
				func(ctx *pc.NativeCtx, args []pc.Value) (pc.Value, error) {
					custName, bySup, _ := s.CustomerParts(args[0].H)
					out, err := pc.MakeVector(ctx.Alloc, pc.KHandle, len(bySup))
					if err != nil {
						return pc.Value{}, err
					}
					// Deterministic order for reproducibility.
					sups := make([]string, 0, len(bySup))
					for k := range bySup {
						sups = append(sups, k)
					}
					sort.Strings(sups)
					for _, supName := range sups {
						info, err := ctx.Alloc.MakeObject(s.SupplierInfo)
						if err != nil {
							return pc.Value{}, err
						}
						if err := object.SetStrField(ctx.Alloc, info, s.SupplierInfo.Field("supName"), supName); err != nil {
							return pc.Value{}, err
						}
						m, err := pc.MakeMap(ctx.Alloc, pc.KString, pc.KHandle, 4)
						if err != nil {
							return pc.Value{}, err
						}
						parts, err := pc.MakeVector(ctx.Alloc, pc.KInt64, len(bySup[supName]))
						if err != nil {
							return pc.Value{}, err
						}
						for _, pid := range bySup[supName] {
							if err := parts.PushBackI64(ctx.Alloc, pid); err != nil {
								return pc.Value{}, err
							}
						}
						if err := m.Put(ctx.Alloc, pc.StringValue(custName), pc.HandleValue(parts.Ref)); err != nil {
							return pc.Value{}, err
						}
						if err := object.SetHandleField(ctx.Alloc, info, s.SupplierInfo.Field("custParts"), m.Ref); err != nil {
							return pc.Value{}, err
						}
						if err := out.PushBackHandle(ctx.Alloc, info); err != nil {
							return pc.Value{}, err
						}
					}
					return pc.HandleValue(out.Ref), nil
				}, pc.FromSelf(arg))
		},
	}

	groupBy := &pc.Aggregate{
		In:      msel,
		ArgType: "SupplierInfo",
		Key:     func(arg *pc.Arg) pc.Term { return pc.FromMember(arg, "supName") },
		Val:     func(arg *pc.Arg) pc.Term { return pc.FromSelf(arg) },
		KeyKind: pc.KString,
		ValKind: pc.KHandle,
		Combine: func(a *pc.Allocator, cur pc.Value, exists bool, next pc.Value) (pc.Value, error) {
			if !exists || cur.H.IsNil() {
				return next, nil
			}
			dst := object.AsMap(object.GetHandleField(cur.H, s.SupplierInfo.Field("custParts")))
			src := object.AsMap(object.GetHandleField(next.H, s.SupplierInfo.Field("custParts")))
			var mergeErr error
			src.Iterate(func(k, v pc.Value) bool {
				if prev, ok := dst.Get(k); ok && !prev.H.IsNil() {
					// Same customer from two partial aggregates:
					// append the part lists.
					pv := object.AsVector(prev.H)
					sv := object.AsVector(v.H)
					for i := 0; i < sv.Len(); i++ {
						if err := pv.PushBackI64(a, sv.I64At(i)); err != nil {
							mergeErr = err
							return false
						}
					}
					return true
				}
				if err := dst.Put(a, k, v); err != nil {
					mergeErr = err
					return false
				}
				return true
			})
			if mergeErr != nil {
				return pc.Value{}, mergeErr
			}
			return cur, nil
		},
		Finalize: func(a *pc.Allocator, key, val pc.Value) (pc.Ref, error) {
			return object.DeepCopy(a, val.H)
		},
	}
	if err := client.CreateSet(db, outSet, "SupplierInfo"); err != nil {
		return err
	}
	_, err := client.ExecuteComputations(pc.NewWrite(db, outSet, groupBy))
	return err
}

// CountCustomersPerSupplierPC is the paper's "final count of the number of
// customers in each Map" forcing evaluation; returns supplier→customer
// count.
func CountCustomersPerSupplierPC(client *pc.Client, s *Schema, db, outSet string) (map[string]int, error) {
	out := map[string]int{}
	err := client.ScanSet(db, outSet, func(r pc.Ref) bool {
		name := object.GetStrField(r, s.SupplierInfo.Field("supName"))
		m := object.AsMap(object.GetHandleField(r, s.SupplierInfo.Field("custParts")))
		out[name] = m.Len()
		return true
	})
	return out, err
}

// TopJaccardEntry is one result row of the top-k query.
type TopJaccardEntry struct {
	Similarity float64
	CustKey    int64
}

// TopKJaccardPC runs the paper's top-k closest customer part sets
// computation: per customer, dedup the purchased partIDs, compute Jaccard
// similarity against the query list, and keep the k best via a TopJaccard
// aggregation.
func TopKJaccardPC(client *pc.Client, s *Schema, db, inSet, outSet string, k int, query []int64) ([]TopJaccardEntry, error) {
	queryList := stat.Dedup(append([]int64(nil), query...))

	writeTopK := func(a *pc.Allocator, entries []TopJaccardEntry) (pc.Ref, error) {
		obj, err := a.MakeObject(s.TopK)
		if err != nil {
			return pc.Ref{}, err
		}
		object.SetI64(obj, s.TopK.Field("k"), int64(k))
		v, err := pc.MakeVector(a, pc.KFloat64, len(entries)*2)
		if err != nil {
			return pc.Ref{}, err
		}
		for _, e := range entries {
			if err := v.PushBackF64(a, e.Similarity); err != nil {
				return pc.Ref{}, err
			}
			if err := v.PushBackF64(a, float64(e.CustKey)); err != nil {
				return pc.Ref{}, err
			}
		}
		return obj, object.SetHandleField(a, obj, s.TopK.Field("entries"), v.Ref)
	}
	readTopK := func(r pc.Ref) []TopJaccardEntry {
		v := object.AsVector(object.GetHandleField(r, s.TopK.Field("entries")))
		out := make([]TopJaccardEntry, 0, v.Len()/2)
		for i := 0; i+1 < v.Len(); i += 2 {
			out = append(out, TopJaccardEntry{Similarity: v.F64At(i), CustKey: int64(v.F64At(i + 1))})
		}
		return out
	}
	mergeTopK := func(a, b []TopJaccardEntry) []TopJaccardEntry {
		all := append(append([]TopJaccardEntry(nil), a...), b...)
		sort.Slice(all, func(i, j int) bool {
			if all[i].Similarity != all[j].Similarity {
				return all[i].Similarity > all[j].Similarity
			}
			return all[i].CustKey < all[j].CustKey
		})
		if len(all) > k {
			all = all[:k]
		}
		return all
	}

	topK := &pc.Aggregate{
		In:      pc.NewScan(db, inSet, "Customer"),
		ArgType: "Customer",
		Key:     func(arg *pc.Arg) pc.Term { return pc.ConstI64(0) },
		Val: func(arg *pc.Arg) pc.Term {
			return pc.FromNative("jaccard", pc.KHandle,
				func(ctx *pc.NativeCtx, args []pc.Value) (pc.Value, error) {
					cust := args[0].H
					_, _, parts := s.CustomerParts(cust)
					sim := stat.Jaccard(stat.Dedup(parts), queryList)
					key := object.GetI64(cust, s.Customer.Field("custkey"))
					r, err := writeTopK(ctx.Alloc, []TopJaccardEntry{{Similarity: sim, CustKey: key}})
					if err != nil {
						return pc.Value{}, err
					}
					return pc.HandleValue(r), nil
				}, pc.FromSelf(arg))
		},
		KeyKind: pc.KInt64,
		ValKind: pc.KHandle,
		Combine: func(a *pc.Allocator, cur pc.Value, exists bool, next pc.Value) (pc.Value, error) {
			if !exists || cur.H.IsNil() {
				return next, nil
			}
			merged := mergeTopK(readTopK(cur.H), readTopK(next.H))
			r, err := writeTopK(a, merged)
			if err != nil {
				return pc.Value{}, err
			}
			return pc.HandleValue(r), nil
		},
		Finalize: func(a *pc.Allocator, key, val pc.Value) (pc.Ref, error) {
			return object.DeepCopy(a, val.H)
		},
	}
	if err := client.CreateSet(db, outSet, "TopKQueue"); err != nil {
		return nil, err
	}
	if _, err := client.ExecuteComputations(pc.NewWrite(db, outSet, topK)); err != nil {
		return nil, err
	}
	var result []TopJaccardEntry
	err := client.ScanSet(db, outSet, func(r pc.Ref) bool {
		result = mergeTopK(result, readTopK(r))
		return true
	})
	return result, err
}
