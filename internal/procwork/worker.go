package procwork

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/object"
	"repro/internal/physical"
	"repro/internal/storage"
	"repro/internal/wire"
)

// Serve runs a worker process's accept loop: one goroutine per control
// connection, one session per connection. It returns when the listener
// closes. A session that fails reports the error back to the master as an
// "error" message and closes its connection; the process survives — a
// genuine panic in user code, by contrast, kills the whole process, which
// is exactly the crash model the master's respawn path recovers from.
func Serve(ln net.Listener, workerID int, dataDir string) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return nil // listener closed: clean shutdown
		}
		go func(conn net.Conn) {
			defer conn.Close()
			if err := session(conn, workerID, dataDir); err != nil {
				_ = WriteMsg(conn, &Msg{Op: "error", Err: err.Error()})
			}
		}(conn)
	}
}

// session reads the opener and dispatches the role.
func session(conn net.Conn, workerID int, dataDir string) error {
	f, err := ReadFrame(conn)
	if err != nil {
		return fmt.Errorf("procwork: reading session opener: %w", err)
	}
	req, err := DecodeMsg(f)
	if err != nil {
		return err
	}
	if req.Worker != workerID {
		return fmt.Errorf("procwork: session for worker %d reached worker %d", req.Worker, workerID)
	}
	switch req.Op {
	case "produce":
		return produce(conn, req, dataDir)
	case "consume":
		return consume(conn, req, dataDir)
	default:
		return fmt.Errorf("procwork: unknown session opener %q", req.Op)
	}
}

// rebuildSession reconstructs a session's execution state: a fresh
// registry carrying the shipped type schemas, the job rebuilt from its
// TCAP text, and the worker's storage server over its DataDir subtree
// (the same directory the master's storage view writes input sets to).
func rebuildSession(req *Msg, dataDir string) (*object.Registry, *core.CompileResult, []*physical.JobStage, *storage.Server, error) {
	reg := object.NewRegistry()
	if err := RegisterSchemas(reg, req.Types); err != nil {
		return nil, nil, nil, nil, err
	}
	res, err := core.Rebuild(req.Prog, reg)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	plan, err := physical.Build(res.Prog)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	store, err := storage.NewServer(dataDir, reg)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return reg, res, plan.Stages, store, nil
}

// findStage resolves the stage a session was asked to run by its artifact
// name — the same identifier the master's scheduler keys on.
func findStage(stages []*physical.JobStage, produces string) (*physical.JobStage, error) {
	for _, st := range stages {
		if st.Produces == produces {
			return st, nil
		}
	}
	return nil, fmt.Errorf("procwork: shipped plan has no stage producing %q", produces)
}

// produce runs the pre-aggregation producer half of a shuffle: scan the
// local partition of the input set, run the stage pipeline across Threads
// executor threads into buffered AggSinks (one hash partition per cluster
// worker), and stream every sealed map page back to the master in thread
// order under a single global sequence — the same single-lane discipline
// the in-process morsel producer uses, so the master relays each frame
// as exchange tag (worker, 0, seq).
func produce(conn net.Conn, req *Msg, dataDir string) error {
	reg, res, stages, store, err := rebuildSession(req, dataDir)
	if err != nil {
		return err
	}
	stage, err := findStage(stages, req.Produces)
	if err != nil {
		return err
	}
	if stage.Kind != physical.StagePipeline || stage.Sink != physical.SinkPreAgg {
		return fmt.Errorf("procwork: stage %q is not a pre-aggregation producer", req.Produces)
	}
	spec := res.AggSpecs[stage.SinkStmt.Out.Name]
	if spec == nil {
		return fmt.Errorf("procwork: no aggregation spec for %q", stage.SinkStmt.Out.Name)
	}
	var pages []*object.Page
	if stage.Scan != nil {
		// This worker may simply hold no pages of the input set.
		if p, err := store.Pages(stage.Scan.Db, stage.Scan.Set); err == nil {
			pages = p
		}
	}
	pool := object.NewPagePool(req.PageSize)
	ranges := engine.BatchRanges(pages, engine.BatchSize)
	chunks := engine.SplitRanges(ranges, req.Threads)
	if len(chunks) == 0 {
		// A worker with no input still streams one page of empty partition
		// maps, honoring the shuffle's artifact contract.
		chunks = [][]engine.PageRange{nil}
	}
	pt, err := engine.RunPipelineThreads(chunks, stage.SourceCol, stage.Stmts, res.Stages, stage.SinkStmt,
		func(t int, stats *engine.Stats, stop <-chan struct{}) (engine.Sink, *engine.Ctx, error) {
			sink, err := engine.NewAggSink(reg, req.PageSize, req.Workers,
				spec.KeyKind, spec.ValKind, spec.Combine,
				stage.SinkStmt.Applied.Cols[0], stage.SinkStmt.Applied.Cols[1], pool, stats)
			if err != nil {
				return nil, nil, err
			}
			ctx, err := engine.NewSinkCtx(sink, reg, nil, req.PageSize, pool, stats)
			if err != nil {
				return nil, nil, err
			}
			return sink, ctx, nil
		}, nil)
	if err != nil {
		return err
	}
	for seq, p := range pt.OutputPages() {
		tag := wire.Tag{Producer: uint32(req.Worker), Thread: 0, Seq: uint32(seq)}
		if err := WritePage(conn, tag, p, reg); err != nil {
			return fmt.Errorf("procwork: streaming produced page %d: %w", seq, err)
		}
	}
	return WriteMsg(conn, &Msg{Op: "eof"})
}

// procResume is the worker-local durable cut metadata, persisted next to
// the local _ckpt snapshot set at every checkpoint. Proc-mode consumers
// always persist when a checkpoint interval is set: process memory never
// survives a kill, so the local disk state is the only recovery state
// there is — it serves both a mid-job respawn and a whole-cluster restart
// through the same hello-cut handshake.
type procResume struct {
	Fingerprint  string `json:"fingerprint"`
	Produces     string `json:"produces"`
	Cut          int    `json:"cut"`
	SubPageSizes []int  `json:"subPageSizes"`
}

// checkpointDb mirrors the cluster's reserved snapshot database name.
const checkpointDb = "_ckpt"

// ckptSet names the consumer's local snapshot set for one stage artifact.
func ckptSet(produces string, worker int) string {
	s := strings.NewReplacer(":", "-", "/", "-", ".", "-").Replace(produces)
	return fmt.Sprintf("proc-%s-w%d", s, worker)
}

// resumePath is where the cut metadata lives in the worker's data dir.
func resumePath(dataDir, set string) string {
	return filepath.Join(dataDir, "resume-"+set+".json")
}

// loadResume restores the local checkpoint a previous incarnation of this
// worker persisted, if it matches the requested job exactly. Any mismatch
// or damage means "start over" — the first new checkpoint overwrites it.
func loadResume(store *storage.Server, reg *object.Registry, req *Msg, set, path string) *engine.MergeCheckpoint {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var r procResume
	if json.Unmarshal(b, &r) != nil {
		return nil
	}
	if r.Fingerprint != req.Fingerprint || r.Produces != req.Produces || r.Cut <= 0 {
		return nil
	}
	if len(r.SubPageSizes) != req.Threads {
		return nil // different merge fan-out: snapshots unusable
	}
	pages, err := store.Pages(checkpointDb, set)
	if err != nil || len(pages) != len(r.SubPageSizes) {
		return nil // snapshots missing or torn
	}
	ck := &engine.MergeCheckpoint{Cut: r.Cut, Subs: make([]engine.SubMapSnapshot, len(pages))}
	for i, pg := range pages {
		ck.Subs[i] = engine.SubMapSnapshot{
			PageSize: r.SubPageSizes[i],
			Data:     append([]byte(nil), pg.Bytes()...),
		}
	}
	return ck
}

// saveCheckpoint persists a cut: snapshot pages through the local storage
// server, then the metadata atomically (temp file + rename) — the same
// write discipline the in-process DataDir checkpoint path uses.
func saveCheckpoint(store *storage.Server, reg *object.Registry, req *Msg, set, path string,
	ck *engine.MergeCheckpoint) error {
	_ = store.Drop(checkpointDb, set) // first checkpoint: nothing to drop
	pages := make([]*object.Page, len(ck.Subs))
	for i, sub := range ck.Subs {
		pg, err := object.FromBytes(append([]byte(nil), sub.Data...), reg)
		if err != nil {
			return err
		}
		pages[i] = pg
	}
	if err := store.Append(checkpointDb, set, pages); err != nil {
		return err
	}
	sizes := make([]int, len(ck.Subs))
	for i := range ck.Subs {
		sizes[i] = ck.Subs[i].PageSize
	}
	b, err := json.Marshal(&procResume{
		Fingerprint:  req.Fingerprint,
		Produces:     req.Produces,
		Cut:          ck.Cut,
		SubPageSizes: sizes,
	})
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("procwork: persisting resume metadata: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("procwork: persisting resume metadata: %w", err)
	}
	return nil
}

// consume runs the aggregation-consumer half of a shuffle. Handshake:
// the worker loads any matching local checkpoint and answers the opener
// with {hello, cut}; the master positions the exchange accordingly and
// relays the stream from the cut on. Every Interval pages the merge
// persists a local checkpoint and sends {ack, cut} up the same connection
// — only then may the master release the exchange's retained pages, so a
// kill at any moment leaves a cut the next incarnation can restart from.
// After the master's {eof}, the worker finalizes, streams its result
// pages back, drops its durable state, and reports done.
func consume(conn net.Conn, req *Msg, dataDir string) error {
	reg, res, _, store, err := rebuildSession(req, dataDir)
	if err != nil {
		return err
	}
	spec := res.AggSpecs[req.AggList]
	if spec == nil {
		return fmt.Errorf("procwork: no aggregation spec for %q", req.AggList)
	}
	set := ckptSet(req.Produces, req.Worker)
	path := resumePath(dataDir, set)
	var resume *engine.MergeCheckpoint
	if req.Interval > 0 {
		resume = loadResume(store, reg, req, set, path)
	}
	cut := 0
	if resume != nil {
		cut = resume.Cut
	}
	if err := WriteMsg(conn, &Msg{Op: "hello", Cut: cut}); err != nil {
		return err
	}

	next := func() (*object.Page, bool, error) {
		f, err := ReadFrame(conn)
		if err != nil {
			return nil, false, fmt.Errorf("procwork: consume stream: %w", err)
		}
		if f.Kind == wire.KindControl {
			m, err := DecodeMsg(f)
			if err != nil {
				return nil, false, err
			}
			if m.Op == "eof" {
				return nil, false, nil
			}
			return nil, false, fmt.Errorf("procwork: unexpected %q mid-stream", m.Op)
		}
		p, err := DecodePage(f, reg)
		if err != nil {
			return nil, false, err
		}
		return p, true, nil
	}
	var ckptr *engine.MergeCheckpointer
	if req.Interval > 0 {
		saves := 0
		ckptr = &engine.MergeCheckpointer{
			Interval: req.Interval,
			Resume:   resume,
			Save: func(ck *engine.MergeCheckpoint) error {
				if err := saveCheckpoint(store, reg, req, set, path, ck); err != nil {
					return err
				}
				saves++
				if req.KillAfterSaves > 0 && saves >= req.KillAfterSaves {
					// A shipped fault.ProcKill: die hard with the cut
					// durable on disk but the ack never sent — the
					// worst-ordered real crash a respawned (or restarted)
					// incarnation must recover from.
					os.Exit(137)
				}
				return WriteMsg(conn, &Msg{Op: "ack", Cut: ck.Cut})
			},
		}
	}
	pool := object.NewPagePool(req.PageSize)
	finals, mergePages, err := engine.MergeAggMapsStream(reg, next, req.Worker, req.Workers,
		spec, req.PageSize, pool, req.Threads, nil, ckptr)
	if err != nil {
		return err
	}
	var fstats engine.Stats
	out, err := engine.FinalizeAggParallel(reg, finals, spec, req.PageSize, pool, &fstats)
	if err != nil {
		return err
	}
	for _, pg := range mergePages {
		pool.Put(pg)
	}
	for seq, p := range out {
		tag := wire.Tag{Producer: uint32(req.Worker), Thread: 0, Seq: uint32(seq)}
		if err := WritePage(conn, tag, p, reg); err != nil {
			return fmt.Errorf("procwork: streaming result page %d: %w", seq, err)
		}
	}
	// The result is streamed; the job no longer needs this worker's
	// recovery state. (If the master dies before committing, the restarted
	// job simply replays the whole stream — resume is an optimization,
	// never a correctness dependency.)
	if req.Interval > 0 {
		_ = store.Drop(checkpointDb, set)
		os.Remove(path)
	}
	return WriteMsg(conn, &Msg{Op: "done"})
}
