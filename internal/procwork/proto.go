// Package procwork is the process boundary: the control protocol and
// serving loop that let a worker backend run as a real OS process
// (cmd/pcworker) dialed by the master over a unix or TCP socket.
//
// Every conversation is one session on one connection, framed with
// internal/wire: KindControl frames carry JSON Msg values (requests,
// handshakes, acks, completion), KindPage frames carry sealed pages
// verbatim — the zero-serialization property holds across genuinely
// separate address spaces, with the frame's type table verified against
// the receiver's registry before a page is adopted.
package procwork

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/object"
	"repro/internal/wire"
)

// maxPayload bounds a single frame on the control socket. Pages are at
// most a few MiB in every supported configuration; 64 MiB leaves room
// without letting a corrupt length field allocate the machine away.
const maxPayload = 64 << 20

// FieldSchema is one field of a shipped struct layout.
type FieldSchema struct {
	Name string `json:"name"`
	Kind int    `json:"kind"`
}

// TypeSchema ships one user type's layout: the worker process re-registers
// it pinned to the master's type code, so sealed pages cross the boundary
// without translation.
type TypeSchema struct {
	Name   string        `json:"name"`
	Code   uint32        `json:"code"`
	Fields []FieldSchema `json:"fields"`
}

// Msg is the control envelope. Op selects the meaning; unused fields stay
// zero. Ops, by direction:
//
//	master → worker: "produce", "consume" (session openers), "ack"
//	  (durable-cut confirmation during consume), "eof" (end of the
//	  relayed shuffle stream)
//	worker → master: "hello" (consume handshake, Cut = resume cut),
//	  "ack" (cut persisted locally, safe to release retained pages),
//	  "eof" (end of a produced stream), "done" (session success),
//	  "error" (session failure, Err set)
type Msg struct {
	Op string `json:"op"`

	// Session opener fields.
	Prog        string       `json:"prog,omitempty"`        // optimized TCAP text
	Produces    string       `json:"produces,omitempty"`    // stage selector ("aggmaps:...", "mat:...")
	AggList     string       `json:"aggList,omitempty"`     // AGGREGATE output list (consume)
	Fingerprint string       `json:"fingerprint,omitempty"` // job identity for durable state
	Worker      int          `json:"worker,omitempty"`
	Workers     int          `json:"workers,omitempty"`
	Threads     int          `json:"threads,omitempty"`
	PageSize    int          `json:"pageSize,omitempty"`
	Interval    int          `json:"interval,omitempty"` // checkpoint interval (pages)
	Types       []TypeSchema `json:"types,omitempty"`

	// KillAfterSaves is a shipped fault.ProcKill: when > 0, the worker
	// exits hard right after its KillAfterSaves-th durable checkpoint
	// save, before the corresponding ack leaves (consume sessions only;
	// 0 disables).
	KillAfterSaves int `json:"killAfterSaves,omitempty"`

	// Cut is the durable page count: the resume position in "hello", the
	// persisted position in "ack" frames both ways.
	Cut int `json:"cut,omitempty"`

	Err string `json:"err,omitempty"`
}

// WriteMsg sends one control message as a KindControl frame.
func WriteMsg(w io.Writer, m *Msg) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("procwork: encoding %q message: %w", m.Op, err)
	}
	return wire.Write(w, &wire.Frame{Kind: wire.KindControl, Payload: payload})
}

// WritePage sends one sealed page as a KindPage frame carrying reg's full
// user-type table, so the receiver can verify code agreement before
// adopting the bytes.
func WritePage(w io.Writer, tag wire.Tag, p *object.Page, reg *object.Registry) error {
	var types []wire.TypeBinding
	for _, ti := range reg.UserTypes() {
		types = append(types, wire.TypeBinding{Code: ti.Code, Name: ti.Name})
	}
	return wire.Write(w, &wire.Frame{Kind: wire.KindPage, Tag: tag, Types: types, Payload: p.Bytes()})
}

// ReadFrame reads the next frame under the protocol's payload bound.
func ReadFrame(r io.Reader) (*wire.Frame, error) {
	return wire.Read(r, maxPayload)
}

// DecodeMsg unpacks a KindControl frame.
func DecodeMsg(f *wire.Frame) (*Msg, error) {
	if f.Kind != wire.KindControl {
		return nil, fmt.Errorf("procwork: expected a control frame, got kind %d", f.Kind)
	}
	var m Msg
	if err := json.Unmarshal(f.Payload, &m); err != nil {
		return nil, fmt.Errorf("procwork: decoding control frame: %w", err)
	}
	return &m, nil
}

// DecodePage verifies a KindPage frame's type table against reg and adopts
// the payload as a page owned by it.
func DecodePage(f *wire.Frame, reg *object.Registry) (*object.Page, error) {
	if f.Kind != wire.KindPage {
		return nil, fmt.Errorf("procwork: expected a page frame, got kind %d", f.Kind)
	}
	for _, tb := range f.Types {
		ti := reg.LookupName(tb.Name)
		if ti == nil {
			// Unknown name: fault the code in (the dynamic class-loading
			// path — registries with a Miss hook fetch the type from the
			// master catalog). A registry with no hook stays nil.
			ti = reg.Lookup(tb.Code)
		}
		if ti == nil || ti.Name != tb.Name {
			return nil, fmt.Errorf("procwork: page frame binds unregistered type %q", tb.Name)
		}
		if ti.Code != tb.Code {
			return nil, fmt.Errorf("procwork: type drift: %q is code %d here, %d on the wire", tb.Name, ti.Code, tb.Code)
		}
	}
	// wire.Read freshly allocates the payload; the page takes ownership.
	return object.FromBytes(f.Payload, reg)
}

// SchemasOf captures reg's user types as shippable schemas (Methods, Hash
// and Equal hooks are native code and cannot cross; proc mode restricts
// itself to plans that never need them).
func SchemasOf(reg *object.Registry) []TypeSchema {
	var out []TypeSchema
	for _, ti := range reg.UserTypes() {
		ts := TypeSchema{Name: ti.Name, Code: ti.Code}
		for _, f := range ti.Fields {
			ts.Fields = append(ts.Fields, FieldSchema{Name: f.Name, Kind: int(f.Kind)})
		}
		out = append(out, ts)
	}
	return out
}

// RegisterSchemas installs shipped schemas into a fresh registry, pinning
// each type to its wire code so sealed pages decode without translation.
func RegisterSchemas(reg *object.Registry, schemas []TypeSchema) error {
	for _, ts := range schemas {
		reg.PinCode(ts.Name, ts.Code)
		b := object.NewStruct(ts.Name)
		for _, f := range ts.Fields {
			b.AddField(f.Name, object.Kind(f.Kind))
		}
		if _, err := b.Build(reg); err != nil {
			return fmt.Errorf("procwork: registering shipped type %q: %w", ts.Name, err)
		}
	}
	return nil
}
