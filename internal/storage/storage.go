// Package storage implements the worker-local storage server (paper §2,
// Appendix D.1): persistent sets of PC pages on a user-level file layout,
// fronted by a buffer pool. Because pages are self-contained byte arrays,
// persistence is a single write of the occupied prefix and loading is a
// single read — no (de)serialization.
package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/object"
)

// Server stores sets of pages. With a directory it persists pages to
// db/set/page-N.pcp files; without one it keeps everything in memory (used
// by tests and the simulated cluster's fast path).
type Server struct {
	mu  sync.RWMutex
	dir string // "" = memory only
	reg *object.Registry

	sets map[string]*setData

	// BytesWritten / BytesRead count storage traffic.
	BytesWritten int64
	BytesRead    int64
}

type setData struct {
	pages []*object.Page // resident pages (memory mode or cache)
	count int            // persisted page count (disk mode)
}

// NewServer creates a storage server. dir may be empty for memory-only
// operation. A non-empty dir is scanned for sets persisted by a previous
// server (db/set/page-N.pcp files), which re-register with their page
// counts so a restarted worker serves them immediately.
func NewServer(dir string, reg *object.Registry) (*Server, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	s := &Server{dir: dir, reg: reg, sets: map[string]*setData{}}
	if dir != "" {
		if err := s.restore(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// restore rediscovers persisted sets: every db/set directory under dir
// re-registers with the number of page files it holds, so appends continue
// the page numbering and Pages serves the restored data.
func (s *Server) restore() error {
	dbs, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	for _, db := range dbs {
		if !db.IsDir() {
			continue
		}
		sets, err := os.ReadDir(filepath.Join(s.dir, db.Name()))
		if err != nil {
			return err
		}
		for _, set := range sets {
			if !set.IsDir() {
				continue
			}
			pages, err := os.ReadDir(filepath.Join(s.dir, db.Name(), set.Name()))
			if err != nil {
				return err
			}
			n := 0
			for _, p := range pages {
				if !p.IsDir() {
					n++
				}
			}
			s.sets[setKey(db.Name(), set.Name())] = &setData{count: n}
		}
	}
	return nil
}

// PageCount reports how many pages a set holds on this server (restore
// bookkeeping; zero for unknown sets).
func (s *Server) PageCount(db, set string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if sd, ok := s.sets[setKey(db, set)]; ok {
		return sd.count
	}
	return 0
}

func setKey(db, set string) string { return db + "." + set }

func (s *Server) setDir(db, set string) string {
	return filepath.Join(s.dir, db, set)
}

// CreateSet prepares a set for storage (idempotent).
func (s *Server) CreateSet(db, set string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := setKey(db, set)
	if _, ok := s.sets[key]; ok {
		return nil
	}
	s.sets[key] = &setData{}
	if s.dir != "" {
		return os.MkdirAll(s.setDir(db, set), 0o755)
	}
	return nil
}

// Append stores pages into a set (creating it if needed). In disk mode each
// page's occupied prefix is written to its own file.
func (s *Server) Append(db, set string, pages []*object.Page) error {
	if err := s.CreateSet(db, set); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sd := s.sets[setKey(db, set)]
	for _, p := range pages {
		p.SetManaged(false)
		if s.dir != "" {
			path := filepath.Join(s.setDir(db, set), fmt.Sprintf("page-%06d.pcp", sd.count))
			b := p.Bytes()
			if err := os.WriteFile(path, b, 0o644); err != nil {
				return err
			}
			s.BytesWritten += int64(len(b))
			sd.count++
		} else {
			sd.pages = append(sd.pages, p)
			sd.count++
		}
	}
	// Keep resident copies in memory mode only; disk mode re-reads.
	return nil
}

// Pages returns all pages of a set, loading from disk in disk mode.
func (s *Server) Pages(db, set string) ([]*object.Page, error) {
	s.mu.RLock()
	sd, ok := s.sets[setKey(db, set)]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: unknown set %s.%s", db, set)
	}
	if s.dir == "" {
		return sd.pages, nil
	}
	entries, err := os.ReadDir(s.setDir(db, set))
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var pages []*object.Page
	for _, n := range names {
		b, err := os.ReadFile(filepath.Join(s.setDir(db, set), n))
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.BytesRead += int64(len(b))
		s.mu.Unlock()
		p, err := object.FromBytes(b, s.reg)
		if err != nil {
			return nil, fmt.Errorf("storage: corrupt page %s: %w", n, err)
		}
		pages = append(pages, p)
	}
	return pages, nil
}

// Drop removes a set and its files.
func (s *Server) Drop(db, set string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := setKey(db, set)
	if _, ok := s.sets[key]; !ok {
		return fmt.Errorf("storage: unknown set %s.%s", db, set)
	}
	delete(s.sets, key)
	if s.dir != "" {
		return os.RemoveAll(s.setDir(db, set))
	}
	return nil
}

// SetBytes reports the stored byte volume of a set (join-strategy
// statistics).
func (s *Server) SetBytes(db, set string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sd, ok := s.sets[setKey(db, set)]
	if !ok {
		return 0
	}
	if s.dir == "" {
		var total int64
		for _, p := range sd.pages {
			total += int64(p.Used())
		}
		return total
	}
	var total int64
	entries, err := os.ReadDir(s.setDir(db, set))
	if err != nil {
		return 0
	}
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}

// Sets lists stored set keys.
func (s *Server) Sets() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.sets))
	for k := range s.sets {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
