package storage

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/object"
)

// spillTestPage builds a page holding one int64-tagged object.
func spillTestPage(t *testing.T, reg *object.Registry, ti *object.TypeInfo, id int64) *object.Page {
	t.Helper()
	p := object.NewPage(1<<12, reg)
	a := object.NewAllocator(p, object.PolicyLightweightReuse)
	root, err := object.MakeVector(a, object.KHandle, 0)
	if err != nil {
		t.Fatal(err)
	}
	root.Retain()
	p.SetRoot(root.Off)
	o, err := a.MakeObject(ti)
	if err != nil {
		t.Fatal(err)
	}
	object.SetI64(o, ti.Field("id"), id)
	if err := root.PushBackHandle(a, o); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSpillPoolRoundTrip spills pages, loads them back, and checks the
// occupied prefix survives bit-for-bit.
func TestSpillPoolRoundTrip(t *testing.T) {
	reg := object.NewRegistry()
	ti := object.NewStruct("SpillRec").AddField("id", object.KInt64).MustBuild(reg)
	sp := NewSpillPool(filepath.Join(t.TempDir(), "spill"), reg)

	p := spillTestPage(t, reg, ti, 42)
	p.SetManaged(false) // loaded pages come back un-managed; compare like images
	want := append([]byte(nil), p.Bytes()...)
	slot, err := sp.Spill(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sp.Load(slot)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Bytes()) != string(want) {
		t.Error("loaded page bytes differ from the spilled image")
	}
	root := object.AsVector(object.Ref{Page: got, Off: got.Root()})
	if id := object.GetI64(root.HandleAt(0), ti.Field("id")); id != 42 {
		t.Errorf("loaded object id = %d, want 42", id)
	}
	if live := sp.LiveSlots(); live != 1 {
		t.Errorf("live slots = %d, want 1", live)
	}
}

// TestSpillPoolSlotReuse frees slots between spills and checks the file
// set stays bounded: a steady-state spill workload must recycle files, not
// grow the directory.
func TestSpillPoolSlotReuse(t *testing.T) {
	reg := object.NewRegistry()
	ti := object.NewStruct("SpillRec2").AddField("id", object.KInt64).MustBuild(reg)
	dir := filepath.Join(t.TempDir(), "spill")
	sp := NewSpillPool(dir, reg)

	for i := 0; i < 20; i++ {
		slot, err := sp.Spill(spillTestPage(t, reg, ti, int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		p, err := sp.Load(slot)
		if err != nil {
			t.Fatal(err)
		}
		root := object.AsVector(object.Ref{Page: p, Off: p.Root()})
		if id := object.GetI64(root.HandleAt(0), ti.Field("id")); id != int64(i) {
			t.Fatalf("round %d: loaded id %d", i, id)
		}
		sp.Free(slot)
	}
	if live := sp.LiveSlots(); live != 0 {
		t.Errorf("live slots after free = %d, want 0", live)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("slot files on disk = %d, want 1 (slots must recycle)", len(entries))
	}
}

// TestSpillPoolCloseRemovesFiles checks Close deletes every spill file and
// rejects further spills — the no-stray-files contract a finished step
// relies on.
func TestSpillPoolCloseRemovesFiles(t *testing.T) {
	reg := object.NewRegistry()
	ti := object.NewStruct("SpillRec3").AddField("id", object.KInt64).MustBuild(reg)
	dir := filepath.Join(t.TempDir(), "spill")
	sp := NewSpillPool(dir, reg)
	for i := 0; i < 3; i++ {
		if _, err := sp.Spill(spillTestPage(t, reg, ti, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Errorf("spill dir still exists after Close (err=%v)", err)
	}
	if _, err := sp.SpillBytes([]byte("x")); err == nil {
		t.Error("spill after Close succeeded, want error")
	}
}
