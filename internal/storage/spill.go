package storage

// SpillPool: the reusable spill-file pool behind the exchange's memory
// governor (Config.MemoryBudget). When a consumer's resident exchange
// bytes exceed the budget, cold pages move to single-page spill files in
// the same page-file format every stored set uses — the page's occupied
// prefix, written in one call and adopted back with object.FromBytes — so
// spilling pays exactly one write and one read, never a (de)serialization
// step. Slots recycle: freeing a slot returns its file for the next spill
// to overwrite, so a steady-state spill workload touches a bounded set of
// files, and Close removes every file the pool ever made.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/object"
)

// SpillPool stores single-page images in reusable slot files under one
// directory. It is safe for concurrent use: many producer threads spill
// into a consumer's pool while the consumer loads pages back.
type SpillPool struct {
	mu     sync.Mutex
	dir    string
	reg    *object.Registry
	made   bool // directory created (lazily, on the first spill)
	closed bool
	free   []int // slot ids whose files may be overwritten
	next   int   // next never-used slot id
	live   int   // slots currently holding a spilled image
}

// NewSpillPool creates a spill pool rooted at dir — or, when dir is
// empty, a process-temp directory chosen on the first spill — created
// lazily and removed by Close, so a pool that never spills touches no
// filesystem state at all. Pages loaded back resolve their type codes
// through reg.
func NewSpillPool(dir string, reg *object.Registry) *SpillPool {
	return &SpillPool{dir: dir, reg: reg}
}

// Dir reports the pool's directory (observability and leak tests).
func (sp *SpillPool) Dir() string { return sp.dir }

func (sp *SpillPool) path(slot int) string {
	return filepath.Join(sp.dir, fmt.Sprintf("spill-%06d.pcp", slot))
}

// Spill writes one page's occupied prefix to a slot file and returns the
// slot.
func (sp *SpillPool) Spill(p *object.Page) (int, error) {
	return sp.SpillBytes(p.Bytes())
}

// SpillBytes writes a raw page image (a checkpoint snapshot's bytes) to a
// slot file and returns the slot.
func (sp *SpillPool) SpillBytes(b []byte) (int, error) {
	sp.mu.Lock()
	if sp.closed {
		sp.mu.Unlock()
		return 0, fmt.Errorf("storage: spill pool closed")
	}
	if !sp.made {
		if sp.dir == "" {
			dir, err := os.MkdirTemp("", "pcspill-")
			if err != nil {
				sp.mu.Unlock()
				return 0, err
			}
			sp.dir = dir
		} else if err := os.MkdirAll(sp.dir, 0o755); err != nil {
			sp.mu.Unlock()
			return 0, err
		}
		sp.made = true
	}
	var slot int
	if n := len(sp.free); n > 0 {
		slot = sp.free[n-1]
		sp.free = sp.free[:n-1]
	} else {
		slot = sp.next
		sp.next++
	}
	sp.live++
	sp.mu.Unlock()

	if err := os.WriteFile(sp.path(slot), b, 0o644); err != nil {
		sp.Free(slot)
		return 0, err
	}
	return slot, nil
}

// LoadBytes reads a slot's raw page image back.
func (sp *SpillPool) LoadBytes(slot int) ([]byte, error) {
	b, err := os.ReadFile(sp.path(slot))
	if err != nil {
		return nil, fmt.Errorf("storage: spill slot %d: %w", slot, err)
	}
	return b, nil
}

// Load reads a slot back as a page (object.FromBytes over the slot file —
// the single-read load every persisted page uses).
func (sp *SpillPool) Load(slot int) (*object.Page, error) {
	b, err := sp.LoadBytes(slot)
	if err != nil {
		return nil, err
	}
	p, err := object.FromBytes(b, sp.reg)
	if err != nil {
		return nil, fmt.Errorf("storage: corrupt spill slot %d: %w", slot, err)
	}
	return p, nil
}

// Free returns a slot's file for reuse by a later spill. Negative slots
// (the "never spilled" sentinel) are ignored.
func (sp *SpillPool) Free(slot int) {
	if slot < 0 {
		return
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.free = append(sp.free, slot)
	sp.live--
}

// LiveSlots reports how many slots currently hold a spilled image.
func (sp *SpillPool) LiveSlots() int {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.live
}

// Close removes every spill file (the whole pool directory) and rejects
// further spills; a pool that never spilled has no directory and Close is
// a pure no-op. Loads of live slots fail after Close; callers close only
// once the step owning the pool has fully drained.
func (sp *SpillPool) Close() error {
	sp.mu.Lock()
	sp.closed = true
	dir, made := sp.dir, sp.made
	sp.mu.Unlock()
	if !made || dir == "" {
		return nil
	}
	return os.RemoveAll(dir)
}
