package storage

import (
	"strings"
	"testing"

	"repro/internal/object"
)

func buildPage(t testing.TB, reg *object.Registry, vals ...float64) *object.Page {
	t.Helper()
	p := object.NewPage(1<<14, reg)
	a := object.NewAllocator(p, object.PolicyLightweightReuse)
	v, err := object.MakeVector(a, object.KFloat64, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	v.Retain()
	for _, x := range vals {
		if err := v.PushBackF64(a, x); err != nil {
			t.Fatal(err)
		}
	}
	p.SetRoot(v.Off)
	return p
}

func TestMemoryModeRoundTrip(t *testing.T) {
	reg := object.NewRegistry()
	s, err := NewServer("", reg)
	if err != nil {
		t.Fatal(err)
	}
	p := buildPage(t, reg, 1, 2, 3)
	if err := s.Append("db", "set", []*object.Page{p}); err != nil {
		t.Fatal(err)
	}
	pages, err := s.Pages("db", "set")
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 1 {
		t.Fatalf("pages = %d", len(pages))
	}
	v := object.AsVector(object.Ref{Page: pages[0], Off: pages[0].Root()})
	if v.Len() != 3 || v.F64At(2) != 3 {
		t.Error("contents lost in memory mode")
	}
}

func TestDiskModePersistsAndReloads(t *testing.T) {
	reg := object.NewRegistry()
	dir := t.TempDir()
	s, err := NewServer(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append("db", "set", []*object.Page{
		buildPage(t, reg, 1, 2), buildPage(t, reg, 3, 4, 5),
	}); err != nil {
		t.Fatal(err)
	}
	if s.BytesWritten == 0 {
		t.Error("disk writes not counted")
	}

	// A brand-new server over the same directory must see the data
	// after re-registering the set (simulating a worker restart).
	s2, err := NewServer(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.CreateSet("db", "set"); err != nil {
		t.Fatal(err)
	}
	pages, err := s2.Pages("db", "set")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range pages {
		total += object.AsVector(object.Ref{Page: p, Off: p.Root()}).Len()
	}
	if total != 5 {
		t.Errorf("reloaded element count = %d, want 5", total)
	}
	if s2.BytesRead == 0 {
		t.Error("disk reads not counted")
	}
}

func TestDropSet(t *testing.T) {
	reg := object.NewRegistry()
	s, _ := NewServer(t.TempDir(), reg)
	_ = s.Append("db", "set", []*object.Page{buildPage(t, reg, 1)})
	if err := s.Drop("db", "set"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Pages("db", "set"); err == nil {
		t.Error("dropped set should be gone")
	}
	if err := s.Drop("db", "set"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestSetBytesAndSets(t *testing.T) {
	reg := object.NewRegistry()
	s, _ := NewServer("", reg)
	_ = s.Append("db", "a", []*object.Page{buildPage(t, reg, 1, 2, 3)})
	_ = s.Append("db", "b", []*object.Page{buildPage(t, reg, 1)})
	if s.SetBytes("db", "a") <= s.SetBytes("db", "b") {
		t.Error("larger set should report more bytes")
	}
	sets := s.Sets()
	if len(sets) != 2 || !strings.Contains(strings.Join(sets, ","), "db.a") {
		t.Errorf("Sets() = %v", sets)
	}
}

func TestUnknownSetErrors(t *testing.T) {
	s, _ := NewServer("", object.NewRegistry())
	if _, err := s.Pages("no", "set"); err == nil {
		t.Error("unknown set should error")
	}
}

func TestDiskModeRestoresSetsOnOpen(t *testing.T) {
	dir := t.TempDir()
	reg := object.NewRegistry()
	s, err := NewServer(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append("db", "set", []*object.Page{buildPage(t, reg, 1, 2), buildPage(t, reg, 3)}); err != nil {
		t.Fatal(err)
	}
	wantBytes := s.SetBytes("db", "set")

	// A fresh server on the same directory must rediscover the set.
	s2, err := NewServer(dir, object.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.PageCount("db", "set"); got != 2 {
		t.Fatalf("restored page count = %d, want 2", got)
	}
	if got := s2.SetBytes("db", "set"); got != wantBytes {
		t.Errorf("restored SetBytes = %d, want %d", got, wantBytes)
	}
	pages, err := s2.Pages("db", "set")
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 2 {
		t.Fatalf("restored Pages = %d, want 2", len(pages))
	}
	// Appends after restore continue the page numbering.
	if err := s2.Append("db", "set", []*object.Page{buildPage(t, reg, 4)}); err != nil {
		t.Fatal(err)
	}
	pages, err = s2.Pages("db", "set")
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 3 {
		t.Fatalf("post-restore append: Pages = %d, want 3", len(pages))
	}
}
