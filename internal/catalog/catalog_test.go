package catalog

import (
	"testing"

	"repro/internal/object"
)

func TestCreateDatabaseAndSet(t *testing.T) {
	m := NewMaster()
	ti := object.NewStruct("DataPoint").AddField("data", KHandleAlias).MustBuild(m.Registry())
	if err := m.CreateDatabase("Mydb"); err != nil {
		t.Fatal(err)
	}
	sm, err := m.CreateSet("Mydb", "Myset", "DataPoint")
	if err != nil {
		t.Fatal(err)
	}
	if sm.TypeCode != ti.Code {
		t.Errorf("set type code = %d, want %d", sm.TypeCode, ti.Code)
	}
	got, err := m.LookupSet("Mydb", "Myset")
	if err != nil || got != sm {
		t.Fatalf("LookupSet: %v %v", got, err)
	}
}

// KHandleAlias keeps the test readable.
const KHandleAlias = object.KHandle

func TestCreateSetErrors(t *testing.T) {
	m := NewMaster()
	if _, err := m.CreateSet("nodb", "s", "T"); err == nil {
		t.Error("set in unknown database should fail")
	}
	_ = m.CreateDatabase("db")
	if _, err := m.CreateSet("db", "s", "Unregistered"); err == nil {
		t.Error("set of unregistered type should fail")
	}
	object.NewStruct("T").AddField("x", object.KInt64).MustBuild(m.Registry())
	if _, err := m.CreateSet("db", "s", "T"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateSet("db", "s", "T"); err == nil {
		t.Error("duplicate set should fail")
	}
}

func TestDropSet(t *testing.T) {
	m := NewMaster()
	_ = m.CreateDatabase("db")
	object.NewStruct("T").AddField("x", object.KInt64).MustBuild(m.Registry())
	_, _ = m.CreateSet("db", "s", "T")
	if err := m.DropSet("db", "s"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.LookupSet("db", "s"); err == nil {
		t.Error("dropped set should be gone")
	}
	if err := m.DropSet("db", "s"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestLocalCatalogFaultsUnknownTypes(t *testing.T) {
	m := NewMaster()
	ti := object.NewStruct("Emp").
		AddField("salary", object.KFloat64).
		MustBuild(m.Registry())

	w := NewLocal(m)
	// Worker has never seen the type; first lookup faults to the master.
	got := w.Registry().Lookup(ti.Code)
	if got == nil || got.Name != "Emp" {
		t.Fatalf("local lookup = %v", got)
	}
	if w.Fetches() != 1 {
		t.Errorf("Fetches = %d, want 1", w.Fetches())
	}
	// Second lookup is served from the local cache.
	_ = w.Registry().Lookup(ti.Code)
	if w.Fetches() != 1 {
		t.Errorf("Fetches after cached lookup = %d, want 1", w.Fetches())
	}
	if m.Stats().TypeFetches != 1 {
		t.Errorf("master TypeFetches = %d, want 1", m.Stats().TypeFetches)
	}
}

func TestLocalCatalogDispatchesShippedObjects(t *testing.T) {
	// End-to-end §6.3 scenario: an object built on a "client" using the
	// master registry is shipped as raw bytes to a worker that has never
	// seen the type; the worker resolves the type code through its local
	// catalog and calls a virtual method on the object.
	m := NewMaster()
	reg := m.Registry()
	ti := object.NewStruct("Emp").
		AddField("salary", object.KFloat64).
		MustBuild(reg)
	ti.Methods["getSalary"] = object.Method{
		Name: "getSalary", Ret: object.KFloat64,
		Fn: func(r object.Ref) object.Value {
			return object.Float64Value(object.GetF64(r, ti.Field("salary")))
		},
	}

	p := object.NewPage(4096, reg)
	a := object.NewAllocator(p, object.PolicyLightweightReuse)
	e, err := a.MakeObject(ti)
	if err != nil {
		t.Fatal(err)
	}
	object.SetF64(e, ti.Field("salary"), 75000)
	p.SetRoot(e.Off)

	shipped := make([]byte, len(p.Bytes()))
	copy(shipped, p.Bytes())

	w := NewLocal(m)
	q, err := object.FromBytes(shipped, w.Registry())
	if err != nil {
		t.Fatal(err)
	}
	r := object.Ref{Page: q, Off: q.Root()}
	wti := w.Registry().Lookup(r.TypeCode())
	if wti == nil {
		t.Fatal("worker could not resolve shipped type")
	}
	meth, ok := wti.Method("getSalary")
	if !ok {
		t.Fatal("method table not shipped with registration")
	}
	if got := meth.Fn(r); got.F != 75000 {
		t.Errorf("dispatched getSalary = %v, want 75000", got)
	}
	if w.Fetches() != 1 {
		t.Errorf("expected exactly one type fetch, got %d", w.Fetches())
	}
}

func TestUpdateSetStats(t *testing.T) {
	m := NewMaster()
	_ = m.CreateDatabase("db")
	object.NewStruct("T").AddField("x", object.KInt64).MustBuild(m.Registry())
	sm, _ := m.CreateSet("db", "s", "T")
	m.UpdateSetStats("db", "s", 3, 12345)
	if sm.PageCount != 3 || sm.ByteCount != 12345 {
		t.Errorf("stats = (%d,%d), want (3,12345)", sm.PageCount, sm.ByteCount)
	}
	if len(m.Sets()) != 1 {
		t.Errorf("Sets() len = %d", len(m.Sets()))
	}
}
