// Package catalog implements PC's catalog service (paper §2, §6.3, Appendix
// D.1): the master catalog serving system metadata — databases, sets, and
// the mapping between type codes and registered PC object types — and the
// per-worker local catalog that caches that metadata and faults in unknown
// type registrations on demand.
//
// In the C++ system a worker that dereferences a handle with an unseen type
// code fetches a shared library (.so) from the master, dynamically loads it,
// and patches the object's vTable pointer. Go cannot load native code at
// runtime in an offline build, so the "library" shipped here is the
// TypeInfo record (layout + method table); the fetch protocol, caching, and
// unknown-type fault path are the same. See DESIGN.md §2 for the
// substitution note.
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/object"
)

// SetMeta describes a stored set: its database, name, element type, and
// placement statistics used by the optimizer (the paper's broadcast-join
// size threshold).
type SetMeta struct {
	Db       string
	Set      string
	TypeName string
	TypeCode uint32

	// PageCount and ByteCount are updated by the storage layer as data
	// arrive; the optimizer consults ByteCount when choosing between
	// broadcast and hash-partition joins.
	PageCount int
	ByteCount int64

	// PartitionKey labels the key the set was pre-partitioned on at load
	// time ("" = unpartitioned). Two sets sharing a label can be joined
	// with zero shuffle (the paper's §8.3.3 future-work item).
	PartitionKey string
}

// Key returns the fully qualified set name.
func (s *SetMeta) Key() string { return s.Db + "." + s.Set }

// Master is the master node's catalog manager: the source of truth for type
// registrations and set metadata.
type Master struct {
	mu    sync.RWMutex
	reg   *object.Registry
	dbs   map[string]bool
	sets  map[string]*SetMeta
	stats MasterStats
}

// MasterStats counts catalog traffic (tests assert the fetch protocol runs).
type MasterStats struct {
	TypeFetches int // "ship the .so" requests served
	SetLookups  int
}

// NewMaster creates an empty master catalog with its own authoritative type
// registry.
func NewMaster() *Master {
	return &Master{
		reg:  object.NewRegistry(),
		dbs:  map[string]bool{},
		sets: map[string]*SetMeta{},
	}
}

// Registry exposes the authoritative registry (the master's own processes —
// optimizer, scheduler — resolve types directly).
func (m *Master) Registry() *object.Registry { return m.reg }

// RegisterType registers a user type with the master before any data of
// that type may be stored in the cluster (the paper's registration
// requirement). Idempotent by name. On a restarted cluster the registry
// assigns re-registered types their persisted codes (Registry.PinCode), so
// restored pages' object headers keep resolving.
func (m *Master) RegisterType(ti *object.TypeInfo) (*object.TypeInfo, error) {
	return m.reg.Register(ti)
}

// FetchType serves a type registration to a worker that has faulted on an
// unknown type code — the .so-shipping analogue.
func (m *Master) FetchType(code uint32) *object.TypeInfo {
	m.mu.Lock()
	m.stats.TypeFetches++
	m.mu.Unlock()
	return m.reg.Lookup(code)
}

// Stats returns a copy of traffic counters.
func (m *Master) Stats() MasterStats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.stats
}

// CreateDatabase registers a database name.
func (m *Master) CreateDatabase(db string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dbs[db] {
		return fmt.Errorf("catalog: database %q already exists", db)
	}
	m.dbs[db] = true
	return nil
}

// CreateSet registers a set of the given registered element type.
func (m *Master) CreateSet(db, set, typeName string) (*SetMeta, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dbs[db] {
		return nil, fmt.Errorf("catalog: unknown database %q", db)
	}
	key := db + "." + set
	if _, dup := m.sets[key]; dup {
		return nil, fmt.Errorf("catalog: set %q already exists", key)
	}
	ti := m.reg.LookupName(typeName)
	if ti == nil {
		return nil, fmt.Errorf("catalog: set %q uses unregistered type %q", key, typeName)
	}
	sm := &SetMeta{Db: db, Set: set, TypeName: typeName, TypeCode: ti.Code}
	m.sets[key] = sm
	return sm, nil
}

// RestoreTypeCode pins a persisted type name to the code its on-disk pages
// embed: when the type re-registers (through this catalog or directly
// against the registry), it gets its original code back, and fresh
// registrations stay clear of it.
func (m *Master) RestoreTypeCode(name string, code uint32) {
	m.reg.PinCode(name, code)
}

// UserTypes lists registered user types for manifest persistence.
func (m *Master) UserTypes() []*object.TypeInfo { return m.reg.UserTypes() }

// RestoreDatabase re-registers a database found in a persisted catalog
// manifest at startup (idempotent, unlike CreateDatabase).
func (m *Master) RestoreDatabase(db string) {
	m.mu.Lock()
	m.dbs[db] = true
	m.mu.Unlock()
}

// RestoreSet re-registers a set discovered on disk at startup, recorded
// under its element type's *name* (the authoritative binding; the
// informational TypeCode resolves only if the type happens to be
// registered already, and on-disk object headers resolve through the
// registry's pinned codes regardless). Idempotent: an already-known set is
// left alone.
func (m *Master) RestoreSet(db, set, typeName, partitionKey string, pages int, bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dbs[db] = true
	key := db + "." + set
	if _, ok := m.sets[key]; ok {
		return
	}
	sm := &SetMeta{Db: db, Set: set, TypeName: typeName, PartitionKey: partitionKey,
		PageCount: pages, ByteCount: bytes}
	if ti := m.reg.LookupName(typeName); ti != nil {
		sm.TypeCode = ti.Code
	}
	m.sets[key] = sm
}

// Databases lists registered database names (manifest persistence).
func (m *Master) Databases() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.dbs))
	for db := range m.dbs {
		out = append(out, db)
	}
	sort.Strings(out)
	return out
}

// LookupSet resolves set metadata.
func (m *Master) LookupSet(db, set string) (*SetMeta, error) {
	m.mu.Lock()
	m.stats.SetLookups++
	sm := m.sets[db+"."+set]
	m.mu.Unlock()
	if sm == nil {
		return nil, fmt.Errorf("catalog: unknown set %s.%s", db, set)
	}
	return sm, nil
}

// DropSet removes a set's metadata.
func (m *Master) DropSet(db, set string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := db + "." + set
	if _, ok := m.sets[key]; !ok {
		return fmt.Errorf("catalog: unknown set %q", key)
	}
	delete(m.sets, key)
	return nil
}

// SetPartitionKey records that a set was pre-partitioned on the labeled
// key at load time.
func (m *Master) SetPartitionKey(db, set, key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if sm := m.sets[db+"."+set]; sm != nil {
		sm.PartitionKey = key
	}
}

// UpdateSetStats records storage growth for a set (called by the storage
// manager as pages are written).
func (m *Master) UpdateSetStats(db, set string, pages int, bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if sm := m.sets[db+"."+set]; sm != nil {
		sm.PageCount += pages
		sm.ByteCount += bytes
	}
}

// Sets lists all set metadata sorted by key (for tooling).
func (m *Master) Sets() []*SetMeta {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*SetMeta, 0, len(m.sets))
	for _, sm := range m.sets {
		out = append(out, sm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Local is a worker front-end's local catalog manager: it owns the worker's
// registry and faults unknown type codes through to the master, caching the
// result — the dynamic class-loading path of paper §6.3.
type Local struct {
	master *Master
	reg    *object.Registry

	mu      sync.Mutex
	fetches int
}

// NewLocal creates a worker-local catalog bound to a master.
func NewLocal(master *Master) *Local {
	l := &Local{master: master, reg: object.NewRegistry()}
	l.reg.Miss = func(code uint32) *object.TypeInfo {
		l.mu.Lock()
		l.fetches++
		l.mu.Unlock()
		return master.FetchType(code)
	}
	return l
}

// Registry returns the worker's registry (with the miss hook installed).
func (l *Local) Registry() *object.Registry { return l.reg }

// Fetches reports how many unknown-type faults this worker resolved against
// the master.
func (l *Local) Fetches() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fetches
}

// LookupSet proxies set resolution to the master.
func (l *Local) LookupSet(db, set string) (*SetMeta, error) {
	return l.master.LookupSet(db, set)
}
