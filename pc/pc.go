// Package pc is the public PlinyCompute API: a high-performance platform
// for developing distributed, data-intensive tools and libraries.
//
// The programming model is the paper's "declarative in the large,
// high-performance in the small":
//
//   - In the large, users describe computations as a graph of Selection,
//     MultiSelection, Join, and Aggregate computations whose behaviour is
//     specified with lambda *term construction functions* (FromMember,
//     FromMethod, FromNative, composed with Eq/And/Gt/...). The system —
//     not the user — picks join orders, join algorithms, filter placement,
//     and materialization by compiling to TCAP and optimizing it.
//
//   - In the small, all data live in the PC object model: objects are
//     allocated in place on pages, referenced by offset handles, and move
//     between memory, disk, and the (simulated) network as raw bytes with
//     zero serialization cost.
//
// A minimal session mirrors the paper's §3 example:
//
//	client, _ := pc.Connect(pc.Config{Workers: 4})
//	dp := pc.NewStruct("DataPoint").AddField("data", pc.KHandle).MustBuild(client.Registry())
//	client.CreateDatabase("Mydb")
//	client.CreateSet("Mydb", "Myset", "DataPoint")
//	pages, _ := client.BuildPages(100, func(a *pc.Allocator, i int) (pc.Ref, error) { ... })
//	client.SendData("Mydb", "Myset", pages)
//
// # Threading model
//
// Execution is parallel at two levels. Worker-level: every job stage runs
// on all Config.Workers simultaneously, each worker executing its share of
// the stored set (the paper's distributed scheduler). Thread-level: inside
// each worker backend, the stage's source batches are split into
// Config.Threads contiguous chunks (default runtime.NumCPU()/Workers, min
// 1), each driven by a dedicated executor thread with a private pipeline,
// execution context, output page set, and sink shard — no locks or atomics
// on the per-row path.
//
// Per-thread results are combined by the sink-merge protocol after the
// stage barrier:
//
//   - OUTPUT and materialization sinks concatenate per-thread pages in
//     thread order; because chunks are contiguous, result order is
//     identical to a sequential run at any thread count.
//   - Pre-aggregation sinks stream: each thread's partitioned map pages
//     flow into the shuffle exchange the moment they seal, tagged
//     (worker, thread, sequence), so shipping and the downstream merge
//     overlap production instead of waiting for the stage barrier.
//   - Join-build sinks merge per-thread hash tables bucket-wise in thread
//     order, preserving sequential per-bucket row order.
//
// The consuming phases honor Config.Threads too, and run concurrently
// with their producers: each worker's aggregation consume stage splits
// its hash partition into per-thread hash-range sub-partitions, every
// thread folding shuffled pages — delivered in deterministic tag order
// regardless of arrival order — into a disjoint sub-map as they arrive,
// then finalizing independently with output pages concatenated in
// sub-partition order.
// The hash-partition and co-partitioned joins parallelize their
// repartition scans, hash-table builds (bucket-wise merged, as above), and
// probe loops; probe matches are buffered per thread and emitted after the
// barrier in thread order, so each worker's emit calls stay serialized in
// the sequential match order. Workers emit in parallel with each other (as
// they always have), so an emit callback touching cross-worker shared
// state must synchronize it. Join key and equality lambdas must be pure:
// they are invoked concurrently across workers and threads.
//
// The single-process core.Executor used by local ablations drives stages
// through the same engine machinery, so Threads behaves identically there.
//
// Query results are therefore deterministic in Config.Threads, up to
// floating-point summation order inside aggregations (integer and
// lattice-quantized aggregates are bit-identical at every thread count).
//
// # Memory governance
//
// Config.MemoryBudget bounds the exchange bytes each worker backend keeps
// resident during a streaming shuffle — lane buffers, replay retention,
// and checkpoint snapshots — spilling the coldest pages to reusable page
// files (under Config.DataDir, or a temp directory) and reloading them
// transparently. Results are bit-for-bit identical at any budget; only
// page residence changes. See docs/TUNING.md for the memory model and how
// MemoryBudget interacts with ShuffleCapacity, Threads,
// CheckpointInterval, DataDir, and BarrierShuffle.
package pc

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/object"
)

// Config sizes the cluster a client connects to (re-exported).
type Config = cluster.Config

// Client is a connection to a PC cluster (in this reproduction, an owned
// in-process simulated cluster; see DESIGN.md §2).
type Client struct {
	Cluster *cluster.Cluster
}

// Connect starts a cluster with the given configuration and returns a
// client bound to it.
func Connect(cfg Config) (*Client, error) {
	c, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Client{Cluster: c}, nil
}

// Registry returns the master type registry; clients build objects against
// it and register types through it before loading data.
func (c *Client) Registry() *object.Registry { return c.Cluster.Catalog.Registry() }

// RegisterType registers a user object type cluster-wide.
func (c *Client) RegisterType(ti *TypeInfo) (*TypeInfo, error) {
	return c.Cluster.RegisterType(ti)
}

// CreateDatabase creates a database.
func (c *Client) CreateDatabase(db string) error { return c.Cluster.CreateDatabase(db) }

// CreateSet creates a set of a registered type.
func (c *Client) CreateSet(db, set, typeName string) error {
	return c.Cluster.CreateSet(db, set, typeName)
}

// BuildPages fills client-side pages with n objects built by fill — the
// makeObjectAllocatorBlock / makeObject pattern of the paper's §3.
func (c *Client) BuildPages(n int, fill func(a *Allocator, i int) (Ref, error)) ([]*Page, error) {
	return object.BuildPages(c.Registry(), c.Cluster.Cfg.PageSize, n, fill)
}

// SendData ships pages into a stored set with zero serialization cost.
func (c *Client) SendData(db, set string, pages []*Page) error {
	return c.Cluster.SendData(db, set, pages)
}

// ExecuteComputations compiles, optimizes, plans, and runs a computation
// graph identified by its Write sinks (the paper's executeComputations).
func (c *Client) ExecuteComputations(writes ...*Write) (*cluster.ExecStats, error) {
	return c.Cluster.Execute(writes...)
}

// ScanSet iterates a stored set's objects.
func (c *Client) ScanSet(db, set string, fn func(r Ref) bool) error {
	return c.Cluster.ScanSet(db, set, fn)
}

// CountSet counts a stored set's objects.
func (c *Client) CountSet(db, set string) (int, error) { return c.Cluster.CountSet(db, set) }

// DropSet removes a stored set.
func (c *Client) DropSet(db, set string) error { return c.Cluster.DropSet(db, set) }

// Close tears the cluster down: socket transports close their
// connections and listeners, and proc-mode worker processes are killed
// and reaped. Durable state under Config.DataDir survives Close; a
// client reconnected on the same directory restores it.
func (c *Client) Close() error { return c.Cluster.Close() }

// Object model re-exports: the "in the small" API surface.

// Ref is a reference to a PC object on a page.
type Ref = object.Ref

// Page is a self-contained block of PC objects.
type Page = object.Page

// Allocator manages the active allocation block.
type Allocator = object.Allocator

// TypeInfo describes a registered PC object type.
type TypeInfo = object.TypeInfo

// Method is a virtual method on a registered type.
type Method = object.Method

// Field describes a member of a registered type.
type Field = object.Field

// Value is a boxed scalar flowing through computations.
type Value = object.Value

// Vector is the PC growable container.
type Vector = object.Vector

// OMap is the PC hash map container.
type OMap = object.OMap

// Kind identifies a storage kind.
type Kind = object.Kind

// Storage kinds.
const (
	KBool    = object.KBool
	KInt32   = object.KInt32
	KInt64   = object.KInt64
	KFloat64 = object.KFloat64
	KHandle  = object.KHandle
	KString  = object.KString
)

// NewStruct begins building a user type layout.
func NewStruct(name string) *object.StructBuilder { return object.NewStruct(name) }

// MakeVector allocates a PC vector.
func MakeVector(a *Allocator, elem Kind, initCap int) (Vector, error) {
	return object.MakeVector(a, elem, initCap)
}

// MakeMap allocates a PC map.
func MakeMap(a *Allocator, keyKind, valKind Kind, initSlots int) (OMap, error) {
	return object.MakeMap(a, keyKind, valKind, initSlots)
}

// Computation graph re-exports: the "in the large" API surface.

// Computation is a node in a query graph.
type Computation = core.Computation

// Scan reads a stored set (the paper's ObjectReader).
type Scan = core.Scan

// Write stores a computation's output (the paper's Writer).
type Write = core.Write

// Selection is SelectionComp.
type Selection = core.Selection

// MultiSelection is MultiSelectionComp.
type MultiSelection = core.MultiSelection

// Join is JoinComp.
type Join = core.Join

// Aggregate is AggregateComp.
type Aggregate = core.Aggregate

// OrderBy sorts a computation's output by one or more lambda-extracted
// keys, optionally keeping only the first Limit rows (top-k).
type OrderBy = core.OrderBy

// SortKey is one ORDER BY key: a lambda term, its scalar kind, and the
// sort direction.
type SortKey = core.SortKey

// Distinct deduplicates a computation's output by a lambda-extracted key.
type Distinct = core.Distinct

// Window is a running aggregate over the sorted stream: rows are ordered
// by Keys, then Combine folds Val left-to-right and Emit rewrites each row
// with the running value.
type Window = core.Window

// JoinKind selects a join's output semantics (see the core constants).
type JoinKind = core.JoinKind

// Join kinds. Inner/semi/anti lower through the computation graph; the
// outer kinds are served by Client.HashPartitionJoinKind, which surfaces
// the absent side of a null-extended row as NilRef.
const (
	JoinInner = core.JoinInner
	JoinSemi  = core.JoinSemi
	JoinAnti  = core.JoinAnti
	JoinLeft  = core.JoinLeft
	JoinRight = core.JoinRight
	JoinFull  = core.JoinFull
)

// NilRef is the null object reference (the absent side of an outer join's
// null-extended row).
var NilRef = object.NilRef

// NewScan creates a set reader.
func NewScan(db, set, typeName string) *Scan { return core.NewScan(db, set, typeName) }

// NewWrite creates a set writer.
func NewWrite(db, set string, in Computation) *Write { return core.NewWrite(db, set, in) }

// SendDataPartitioned loads pages into a set pre-partitioned on key: each
// object is placed on the worker owning hash(key(obj)), and the catalog
// records keyLabel. Sets sharing a label join with zero shuffle via
// CoPartitionedJoin — the paper's §8.3.3 future-work item, implemented.
func (c *Client) SendDataPartitioned(db, set string, pages []*Page, keyLabel string, key func(Ref) uint64) error {
	return c.Cluster.SendDataPartitioned(db, set, pages, keyLabel, key)
}

// CoPartitionedJoin joins two co-partitioned sets locally on every worker,
// with no repartition stages and no shuffle.
func (c *Client) CoPartitionedJoin(dbL, setL, dbR, setR string,
	keyL, keyR func(Ref) uint64, eq func(l, r Ref) bool,
	emit func(workerID int, l, r Ref) error) error {
	return c.Cluster.CoPartitionedJoin(dbL, setL, dbR, setR, keyL, keyR, eq, emit)
}

// HashPartitionJoinKind runs the streaming hash-partition join with
// selectable semantics (inner/left/semi/anti/right/full); null-extended
// rows carry NilRef on the absent side. See
// cluster.Cluster.HashPartitionJoinKind for the recovery contract.
func (c *Client) HashPartitionJoinKind(kind JoinKind, dbL, setL, dbR, setR string,
	keyL, keyR func(Ref) uint64, eq func(l, r Ref) bool,
	emit func(workerID int, l, r Ref) error) error {
	_, err := c.Cluster.HashPartitionJoinKind(kind, dbL, setL, dbR, setR, keyL, keyR, eq, emit)
	return err
}
