package pc

import (
	"repro/internal/lambda"
	"repro/internal/object"
)

// Lambda calculus re-exports (paper §4): abstraction families and
// higher-order composition functions used inside computation definitions.

// Term is a lambda expression node.
type Term = lambda.Term

// Arg is a computation input argument.
type Arg = lambda.Arg

// NativeCtx gives native lambdas access to the live output allocator.
type NativeCtx = lambda.NativeCtx

// NativeFn is the opaque native function signature.
type NativeFn = lambda.NativeFn

// Abstraction families.

// FromMember is makeLambdaFromMember.
func FromMember(recv Term, field string) Term { return lambda.FromMember(recv, field) }

// FromMethod is makeLambdaFromMethod.
func FromMethod(recv Term, method string) Term { return lambda.FromMethod(recv, method) }

// FromSelf is makeLambdaFromSelf.
func FromSelf(recv Term) Term { return lambda.FromSelf(recv) }

// FromNative is makeLambda: wraps an opaque native function. Logic hidden
// here is invisible to the optimizer — expose intent through the calculus
// where possible.
func FromNative(name string, ret Kind, fn NativeFn, deps ...Term) Term {
	return lambda.FromNative(name, ret, fn, deps...)
}

// Literal constants.

// ConstF64 lifts a float64 literal.
func ConstF64(f float64) Term { return lambda.ConstF64(f) }

// ConstI64 lifts an int64 literal.
func ConstI64(i int64) Term { return lambda.ConstI64(i) }

// ConstStr lifts a string literal.
func ConstStr(s string) Term { return lambda.ConstStr(s) }

// Higher-order composition functions.

// Eq composes an equality comparison term.
func Eq(l, r Term) Term { return lambda.Eq(l, r) }

// Ne composes an inequality comparison term.
func Ne(l, r Term) Term { return lambda.Ne(l, r) }

// Gt composes a greater-than comparison term.
func Gt(l, r Term) Term { return lambda.Gt(l, r) }

// Ge composes a greater-or-equal comparison term.
func Ge(l, r Term) Term { return lambda.Ge(l, r) }

// Lt composes a less-than comparison term.
func Lt(l, r Term) Term { return lambda.Lt(l, r) }

// Le composes a less-or-equal comparison term.
func Le(l, r Term) Term { return lambda.Le(l, r) }

// And composes a logical conjunction term.
func And(l, r Term) Term { return lambda.And(l, r) }

// Or composes a logical disjunction term.
func Or(l, r Term) Term { return lambda.Or(l, r) }

// Not composes a logical negation term.
func Not(x Term) Term { return lambda.Not(x) }

// Add composes an arithmetic addition term.
func Add(l, r Term) Term { return lambda.Add(l, r) }

// Sub composes an arithmetic subtraction term.
func Sub(l, r Term) Term { return lambda.Sub(l, r) }

// Mul composes an arithmetic multiplication term.
func Mul(l, r Term) Term { return lambda.Mul(l, r) }

// Div composes an arithmetic division term.
func Div(l, r Term) Term { return lambda.Div(l, r) }

// Value constructors (object model scalars).

// BoolValue boxes a bool.
func BoolValue(b bool) Value { return object.BoolValue(b) }

// Int64Value boxes an int64.
func Int64Value(i int64) Value { return object.Int64Value(i) }

// Float64Value boxes a float64.
func Float64Value(f float64) Value { return object.Float64Value(f) }

// StringValue boxes a string.
func StringValue(s string) Value { return object.StringValue(s) }

// HandleValue boxes an object reference.
func HandleValue(r Ref) Value { return object.HandleValue(r) }
