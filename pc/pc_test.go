package pc_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/object"
	"repro/pc"
)

// TestPaperSection3Quickstart follows the paper's §3 DataPoint walkthrough:
// build objects into an allocation block, send them to the cluster, read
// them back.
func TestPaperSection3Quickstart(t *testing.T) {
	client, err := pc.Connect(pc.Config{Workers: 3, PageSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	dp := pc.NewStruct("DataPoint").
		AddField("data", pc.KHandle).
		MustBuild(client.Registry())

	if err := client.CreateDatabase("Mydb"); err != nil {
		t.Fatal(err)
	}
	if err := client.CreateSet("Mydb", "Myset", "DataPoint"); err != nil {
		t.Fatal(err)
	}
	pages, err := client.BuildPages(100, func(a *pc.Allocator, i int) (pc.Ref, error) {
		storeMe, err := a.MakeObject(dp)
		if err != nil {
			return pc.Ref{}, err
		}
		data, err := pc.MakeVector(a, pc.KFloat64, 0)
		if err != nil {
			return pc.Ref{}, err
		}
		for j := 0; j < 10; j++ {
			if err := data.PushBackF64(a, float64(i*10+j)); err != nil {
				return pc.Ref{}, err
			}
		}
		if err := object.SetHandleField(a, storeMe, dp.Field("data"), data.Ref); err != nil {
			return pc.Ref{}, err
		}
		return storeMe, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.SendData("Mydb", "Myset", pages); err != nil {
		t.Fatal(err)
	}
	count, err := client.CountSet("Mydb", "Myset")
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	// Nested vectors survive the zero-copy ship.
	sum := 0.0
	_ = client.ScanSet("Mydb", "Myset", func(r pc.Ref) bool {
		v := object.AsVector(object.GetHandleField(r, dp.Field("data")))
		for i := 0; i < v.Len(); i++ {
			sum += v.F64At(i)
		}
		return true
	})
	if want := 999.0 * 1000 / 2; sum != want {
		t.Errorf("sum = %g, want %g", sum, want)
	}
}

// TestAppendixAKMeans implements the paper's Appendix A k-means example on
// the public API: an AggregateComp keyed by the closest centroid, averaging
// member vectors, iterated to convergence.
func TestAppendixAKMeans(t *testing.T) {
	const (
		dims   = 2
		points = 300
		k      = 3
	)
	client, err := pc.Connect(pc.Config{Workers: 4, PageSize: 1 << 17})
	if err != nil {
		t.Fatal(err)
	}
	reg := client.Registry()
	dp := pc.NewStruct("DataPoint").
		AddField("data", pc.KHandle).
		MustBuild(reg)
	centroid := pc.NewStruct("Centroid").
		AddField("centroidId", pc.KInt64).
		AddField("cnt", pc.KInt64).
		AddField("data", pc.KHandle).
		MustBuild(reg)

	_ = client.CreateDatabase("myDB")
	_ = client.CreateSet("myDB", "mySet", "DataPoint")

	// Three well-separated clusters.
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	pages, err := client.BuildPages(points, func(a *pc.Allocator, i int) (pc.Ref, error) {
		p, err := a.MakeObject(dp)
		if err != nil {
			return pc.Ref{}, err
		}
		v, err := pc.MakeVector(a, pc.KFloat64, dims)
		if err != nil {
			return pc.Ref{}, err
		}
		c := centers[i%k]
		jitter := float64(i%7)*0.1 - 0.3
		if err := v.PushBackF64(a, c[0]+jitter); err != nil {
			return pc.Ref{}, err
		}
		if err := v.PushBackF64(a, c[1]-jitter); err != nil {
			return pc.Ref{}, err
		}
		return p, object.SetHandleField(a, p, dp.Field("data"), v.Ref)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.SendData("myDB", "mySet", pages); err != nil {
		t.Fatal(err)
	}

	model := [][]float64{{1, 1}, {9, 9}, {-9, 9}} // near-truth init
	dataField := dp.Field("data")

	for iter := 0; iter < 5; iter++ {
		centroids := make([][]float64, k)
		for i := range centroids {
			centroids[i] = append([]float64(nil), model[i]...)
		}
		// getKeyProjection: the closest centroid's id (a native
		// lambda, as in the paper's Appendix A).
		getClose := func(x []float64) int64 {
			best, bestD := 0, math.Inf(1)
			for ci, c := range centroids {
				d := 0.0
				for j := range c {
					d += (x[j] - c[j]) * (x[j] - c[j])
				}
				if d < bestD {
					best, bestD = ci, d
				}
			}
			return int64(best)
		}
		agg := &pc.Aggregate{
			In:      pc.NewScan("myDB", "mySet", "DataPoint"),
			ArgType: "DataPoint",
			Key: func(arg *pc.Arg) pc.Term {
				return pc.FromNative("getClose", pc.KInt64,
					func(ctx *pc.NativeCtx, args []pc.Value) (pc.Value, error) {
						v := object.AsVector(object.GetHandleField(args[0].H, dataField))
						return pc.Int64Value(getClose(v.Float64Slice())), nil
					}, pc.FromSelf(arg))
			},
			// getValueProjection: the paper's fromMe() pattern —
			// convert each DataPoint into an Avg-style accumulator
			// (cnt=1, sum=the point), so Combine is closed over one
			// type for both pre-aggregation and the shuffle merge.
			Val: func(arg *pc.Arg) pc.Term {
				return pc.FromNative("fromMe", pc.KHandle,
					func(ctx *pc.NativeCtx, args []pc.Value) (pc.Value, error) {
						src := object.AsVector(object.GetHandleField(args[0].H, dataField))
						acc, err := ctx.Alloc.MakeObject(centroid)
						if err != nil {
							return pc.Value{}, err
						}
						object.SetI64(acc, centroid.Field("cnt"), 1)
						sum, err := pc.MakeVector(ctx.Alloc, pc.KFloat64, src.Len())
						if err != nil {
							return pc.Value{}, err
						}
						if err := sum.AppendFloat64s(ctx.Alloc, src.Float64Slice()); err != nil {
							return pc.Value{}, err
						}
						if err := object.SetHandleField(ctx.Alloc, acc, centroid.Field("data"), sum.Ref); err != nil {
							return pc.Value{}, err
						}
						return pc.HandleValue(acc), nil
					}, pc.FromSelf(arg))
			},
			KeyKind: pc.KInt64,
			ValKind: pc.KHandle,
			// Avg + Avg: fold counts and element-wise sums.
			Combine: func(a *pc.Allocator, cur pc.Value, exists bool, next pc.Value) (pc.Value, error) {
				if !exists || cur.H.IsNil() {
					return next, nil
				}
				acc, add := cur.H, next.H
				object.SetI64(acc, centroid.Field("cnt"),
					object.GetI64(acc, centroid.Field("cnt"))+object.GetI64(add, centroid.Field("cnt")))
				sum := object.AsVector(object.GetHandleField(acc, centroid.Field("data")))
				av := object.AsVector(object.GetHandleField(add, centroid.Field("data")))
				for j := 0; j < sum.Len(); j++ {
					sum.SetF64(j, sum.F64At(j)+av.F64At(j))
				}
				return cur, nil
			},
			Finalize: func(a *pc.Allocator, key, val pc.Value) (pc.Ref, error) {
				out, err := a.MakeObject(centroid)
				if err != nil {
					return pc.Ref{}, err
				}
				object.SetI64(out, centroid.Field("centroidId"), key.I)
				src := val.H
				object.SetI64(out, centroid.Field("cnt"), object.GetI64(src, centroid.Field("cnt")))
				sum := object.AsVector(object.GetHandleField(src, centroid.Field("data")))
				mean, err := pc.MakeVector(a, pc.KFloat64, sum.Len())
				if err != nil {
					return pc.Ref{}, err
				}
				cnt := float64(object.GetI64(src, centroid.Field("cnt")))
				for j := 0; j < sum.Len(); j++ {
					if err := mean.PushBackF64(a, sum.F64At(j)/cnt); err != nil {
						return pc.Ref{}, err
					}
				}
				return out, object.SetHandleField(a, out, centroid.Field("data"), mean.Ref)
			},
		}
		outSet := fmt.Sprintf("myOutSet%d", iter)
		_ = client.CreateSet("myDB", outSet, "Centroid")
		if _, err := client.ExecuteComputations(pc.NewWrite("myDB", outSet, agg)); err != nil {
			t.Fatal(err)
		}
		// Pull the updated model back to the driver.
		err = client.ScanSet("myDB", outSet, func(r pc.Ref) bool {
			id := object.GetI64(r, centroid.Field("centroidId"))
			mean := object.AsVector(object.GetHandleField(r, centroid.Field("data")))
			model[id] = mean.Float64Slice()
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Converged model must sit near the true cluster centers.
	for _, c := range centers {
		best := math.Inf(1)
		for _, m := range model {
			d := math.Hypot(m[0]-c[0], m[1]-c[1])
			if d < best {
				best = d
			}
		}
		if best > 0.5 {
			t.Errorf("no centroid within 0.5 of true center %v (model %v)", c, model)
		}
	}
}

// TestDeclarativeJoinOnPublicAPI exercises Selection + Join through pc.
func TestDeclarativeJoinOnPublicAPI(t *testing.T) {
	client, err := pc.Connect(pc.Config{Workers: 2, PageSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	reg := client.Registry()
	item := pc.NewStruct("Item").
		AddField("id", pc.KInt64).
		AddField("owner", pc.KInt64).
		MustBuild(reg)
	user := pc.NewStruct("User").
		AddField("id", pc.KInt64).
		MustBuild(reg)
	_ = client.CreateDatabase("db")
	_ = client.CreateSet("db", "items", "Item")
	_ = client.CreateSet("db", "users", "User")
	_ = client.CreateSet("db", "owned", "Item")

	itemPages, _ := client.BuildPages(50, func(a *pc.Allocator, i int) (pc.Ref, error) {
		r, err := a.MakeObject(item)
		if err != nil {
			return pc.Ref{}, err
		}
		object.SetI64(r, item.Field("id"), int64(i))
		object.SetI64(r, item.Field("owner"), int64(i%10))
		return r, nil
	})
	_ = client.SendData("db", "items", itemPages)
	userPages, _ := client.BuildPages(5, func(a *pc.Allocator, i int) (pc.Ref, error) {
		r, err := a.MakeObject(user)
		if err != nil {
			return pc.Ref{}, err
		}
		object.SetI64(r, user.Field("id"), int64(i))
		return r, nil
	})
	_ = client.SendData("db", "users", userPages)

	join := &pc.Join{
		In:       []pc.Computation{pc.NewScan("db", "items", "Item"), pc.NewScan("db", "users", "User")},
		ArgTypes: []string{"Item", "User"},
		Predicate: func(args []*pc.Arg) pc.Term {
			return pc.Eq(pc.FromMember(args[0], "owner"), pc.FromMember(args[1], "id"))
		},
		Projection: func(args []*pc.Arg) pc.Term { return pc.FromSelf(args[0]) },
	}
	if _, err := client.ExecuteComputations(pc.NewWrite("db", "owned", join)); err != nil {
		t.Fatal(err)
	}
	count, _ := client.CountSet("db", "owned")
	// Items with owner 0..4 match: owners 0..9 uniform over 50 items => 25.
	if count != 25 {
		t.Fatalf("joined items = %d, want 25", count)
	}
}
