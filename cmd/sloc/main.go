// sloc counts source lines of code per package directory — the tooling
// behind Table 7's programmability comparison.
//
//	go run ./cmd/sloc [root]
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/bench"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	perDir := map[string]int{}
	perDirTests := map[string]int{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		n, err := bench.CountSLOC(path)
		if err != nil {
			return err
		}
		dir, _ := filepath.Rel(root, filepath.Dir(path))
		if strings.HasSuffix(path, "_test.go") {
			perDirTests[dir] += n
		} else {
			perDir[dir] += n
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	dirs := map[string]bool{}
	for d := range perDir {
		dirs[d] = true
	}
	for d := range perDirTests {
		dirs[d] = true
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	totalCode, totalTest := 0, 0
	fmt.Printf("%-28s %8s %8s\n", "package", "code", "tests")
	for _, d := range sorted {
		fmt.Printf("%-28s %8d %8d\n", d, perDir[d], perDirTests[d])
		totalCode += perDir[d]
		totalTest += perDirTests[d]
	}
	fmt.Printf("%-28s %8d %8d   (total %d)\n", "TOTAL", totalCode, totalTest, totalCode+totalTest)
}
