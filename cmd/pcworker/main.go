// pcworker is the worker-process binary of a proc-mode cluster
// (cluster.Config.ProcBin): one OS process per worker node, hosting the
// worker's backend. The master spawns it, reads the "ADDR <addr>" banner
// it prints on stdout, and dials one control connection per role session
// (internal/procwork). Shipped jobs arrive as optimized TCAP text plus
// type schemas; the aggregation families they name must be linked into
// this binary (internal/agglib) — the names cross the wire, the code is
// shared by the build.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"

	_ "repro/internal/agglib" // named aggregation families, shared with the master
	"repro/internal/procwork"
)

func main() {
	worker := flag.Int("worker", 0, "worker id within the cluster")
	network := flag.String("network", "unix", "control socket network: unix or tcp")
	data := flag.String("data", "", "worker data directory (the cluster's DataDir/worker-N)")
	flag.Parse()
	if *data == "" {
		fatal("pcworker: -data is required")
	}
	if err := os.MkdirAll(*data, 0o755); err != nil {
		fatal(fmt.Sprintf("pcworker: %v", err))
	}
	var ln net.Listener
	var err error
	switch *network {
	case "unix":
		sock := filepath.Join(*data, fmt.Sprintf("ctl-%d.sock", *worker))
		os.Remove(sock) // a previous incarnation's socket, if any
		ln, err = net.Listen("unix", sock)
	case "tcp":
		ln, err = net.Listen("tcp", "127.0.0.1:0")
	default:
		fatal(fmt.Sprintf("pcworker: unknown network %q", *network))
	}
	if err != nil {
		fatal(fmt.Sprintf("pcworker: listen: %v", err))
	}
	// The banner is the spawn contract: the master reads exactly this line
	// to learn where to dial.
	fmt.Printf("ADDR %s\n", ln.Addr())
	if err := procwork.Serve(ln, *worker, *data); err != nil {
		fatal(fmt.Sprintf("pcworker: %v", err))
	}
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(1)
}
