// doccheck verifies that every exported identifier in the given package
// directories carries a doc comment — the documentation gate CI runs over
// the public pc package (a stdlib-only stand-in for revive's `exported`
// rule).
//
//	go run ./cmd/doccheck ./pc [./linalg ...]
//
// Exit status 1 lists each undocumented identifier as file:line: name.
// A grouped const/var/type block is satisfied by its block comment.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir> [package-dir ...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		missing, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Println(m)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifier(s) without doc comments\n", bad)
		os.Exit(1)
	}
}

// checkDir parses one package directory (tests excluded) and returns a
// "file:line: name" entry for every exported identifier lacking a doc
// comment.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedReceiver(d) {
						continue
					}
					if d.Doc == nil {
						report(d.Pos(), funcName(d))
					}
				case *ast.GenDecl:
					if d.Tok == token.IMPORT {
						continue
					}
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), s.Name.Name)
							}
						case *ast.ValueSpec:
							// A block comment documents the whole
							// group (idiomatic for const ladders).
							if d.Doc != nil {
								continue
							}
							for _, n := range s.Names {
								if n.IsExported() && s.Doc == nil && s.Comment == nil {
									report(n.Pos(), n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return missing, nil
}

// exportedReceiver reports whether a method's receiver type is exported
// (methods on unexported types need no doc comments); plain functions
// trivially qualify.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// funcName renders "Recv.Method" for methods and "Func" for functions.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}
