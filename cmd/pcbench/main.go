// pcbench regenerates every table of the paper's evaluation (§8) at laptop
// scale, printing measured results next to the paper's reported numbers.
//
//	go run ./cmd/pcbench            # all tables
//	go run ./cmd/pcbench -table 3   # one table
//	go run ./cmd/pcbench -ablations # design-choice ablations
//	go run ./cmd/pcbench -chaos     # seeded fault-injection campaign
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/bench"
)

func main() {
	table := flag.Int("table", 0, "run only this table (2-8); 0 = all")
	ablations := flag.Bool("ablations", false, "also run the design-choice ablations")
	scaling := flag.Bool("scaling", false, "run only the thread-scaling, shuffle-overlap, memory-budget, morsel-scheduling, hash-table, transport, and sort ablations (pipeline, aggregation, join, exchange, spill, skew, swiss, wire, order-by); persists BENCH_7.json through BENCH_10.json")
	chaos := flag.Bool("chaos", false, "run the seeded fault-injection campaign (crash/IO-error schedules across workers x threads x budgets); persists BENCH_6.json")
	flag.Parse()

	if *chaos {
		t, err := bench.RunChaosCampaign(bench.DefaultChaos())
		if t != nil {
			fmt.Println(t.Format())
		}
		if err != nil {
			log.Fatal(err)
		}
		out := filepath.Join(repoRoot(), "BENCH_6.json")
		if err := bench.WriteJSON(out, []*bench.Table{t}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", out)
		return
	}

	if *scaling {
		var tables []*bench.Table
		for _, run := range []func() (*bench.Table, error){
			func() (*bench.Table, error) { return bench.RunIntraWorkerScaling(bench.DefaultScaling()) },
			func() (*bench.Table, error) { return bench.RunAggScaling(bench.DefaultAggScaling()) },
			func() (*bench.Table, error) { return bench.RunJoinScaling(bench.DefaultJoinScaling()) },
			func() (*bench.Table, error) { return bench.RunShuffleOverlap(bench.DefaultShuffleOverlap()) },
			func() (*bench.Table, error) { return bench.RunSpillLadder(bench.DefaultSpillLadder()) },
			func() (*bench.Table, error) { return bench.RunMorselSkewLadder(bench.DefaultMorselLadder()) },
		} {
			t, err := run()
			if err != nil {
				log.Fatal(err)
			}
			tables = append(tables, t)
			fmt.Println(t.Format())
		}
		out := filepath.Join(repoRoot(), "BENCH_7.json")
		if err := bench.WriteJSON(out, tables); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", out)

		// The hash-ablation ladder persists separately: BENCH_8.json is the
		// swiss-table acceptance artifact (identity enforced inside the run).
		ht, err := bench.RunHashTableLadder(bench.DefaultHashLadder())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(ht.Format())
		out = filepath.Join(repoRoot(), "BENCH_8.json")
		if err := bench.WriteJSON(out, []*bench.Table{ht}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", out)

		// The transport ladder persists separately: BENCH_9.json is the
		// wire-native process-boundary acceptance artifact (mem vs sockets
		// vs real worker processes, identity enforced inside the run).
		tt, err := bench.RunTransportLadder(bench.DefaultTransportLadder())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tt.Format())
		out = filepath.Join(repoRoot(), "BENCH_9.json")
		if err := bench.WriteJSON(out, []*bench.Table{tt}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", out)

		// The sort ladder persists separately: BENCH_10.json is the
		// relational-surface acceptance artifact (distributed ORDER BY merge
		// network, identity across thread counts enforced inside the run).
		st, err := bench.RunSortLadder(bench.DefaultSortScaling())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(st.Format())
		out = filepath.Join(repoRoot(), "BENCH_10.json")
		if err := bench.WriteJSON(out, []*bench.Table{st}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", out)
		return
	}

	type exp struct {
		id  int
		run func() (*bench.Table, error)
	}
	experiments := []exp{
		{2, func() (*bench.Table, error) { return bench.RunTable2(bench.DefaultTable2()) }},
		{3, func() (*bench.Table, error) { return bench.RunTable3(bench.DefaultTable3()) }},
		{4, func() (*bench.Table, error) { return bench.RunTable4(bench.DefaultTable4()) }},
		{5, func() (*bench.Table, error) { return bench.RunTable5(bench.DefaultTable5()) }},
		{6, func() (*bench.Table, error) { return bench.RunTable6(bench.DefaultTable6()) }},
		{7, func() (*bench.Table, error) { return bench.RunTable7(repoRoot()) }},
		{8, func() (*bench.Table, error) { return bench.RunTable8(bench.DefaultTable8()) }},
	}
	for _, e := range experiments {
		if *table != 0 && e.id != *table {
			continue
		}
		t, err := e.run()
		if err != nil {
			log.Fatalf("table %d: %v", e.id, err)
		}
		fmt.Println(t.Format())
	}
	if *ablations {
		for _, run := range []func() (*bench.Table, error){
			func() (*bench.Table, error) { return bench.RunObjectModelVsGob(100000) },
			func() (*bench.Table, error) { return bench.RunAllocatorPolicies(200000) },
			func() (*bench.Table, error) { return bench.RunBroadcastVsPartition(5000, 500) },
			func() (*bench.Table, error) { return bench.RunOptimizerAblation(5000) },
			func() (*bench.Table, error) { return bench.RunCoPartitionedJoin(5000, 1000) },
			func() (*bench.Table, error) { return bench.RunIntraWorkerScaling(bench.DefaultScaling()) },
			func() (*bench.Table, error) { return bench.RunAggScaling(bench.DefaultAggScaling()) },
			func() (*bench.Table, error) { return bench.RunJoinScaling(bench.DefaultJoinScaling()) },
			func() (*bench.Table, error) { return bench.RunShuffleOverlap(bench.DefaultShuffleOverlap()) },
			func() (*bench.Table, error) { return bench.RunSpillLadder(bench.DefaultSpillLadder()) },
		} {
			t, err := run()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(t.Format())
		}
	}
}

// repoRoot finds the module root (for the SLOC table) by walking up from
// the working directory until go.mod appears.
func repoRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return "."
	}
	for {
		if _, err := os.Stat(dir + "/go.mod"); err == nil {
			return dir
		}
		parent := dir + "/.."
		if abs, err := os.Stat(parent); err != nil || !abs.IsDir() {
			return "."
		}
		dir = parent
		if len(dir) > 4096 {
			return "."
		}
	}
}
