// tcapc demonstrates PC's compilation stack on the paper's running
// examples: it compiles a computation graph's lambda terms to TCAP, runs
// the rule-based optimizer, and prints the physical plan.
//
//	go run ./cmd/tcapc -example sel       # §7 redundant-method-call example
//	go run ./cmd/tcapc -example join      # §7 filter-pushdown example
//	go run ./cmd/tcapc -example join3     # §4/§5.2 three-way join (Figure 1)
//	go run ./cmd/tcapc -example fig3      # Figure 3's 3-join + aggregation DAG
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/lambda"
	"repro/internal/object"
	"repro/internal/optimizer"
	"repro/internal/physical"
)

func main() {
	example := flag.String("example", "sel", "sel | join | join3 | fig3")
	flag.Parse()

	var write *core.Write
	switch *example {
	case "sel":
		write = selExample()
	case "join":
		write = joinExample()
	case "join3":
		write = join3Example()
	case "fig3":
		write = fig3Example()
	default:
		log.Fatalf("unknown example %q", *example)
	}

	res, err := core.Compile(write)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("---- compiled TCAP ----")
	fmt.Print(res.Prog.Print())

	opt, stats, err := optimizer.Optimize(res.Prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n---- optimized TCAP (rules fired: %d redundant applies, %d filters pushed, %d dead columns) ----\n",
		stats.RedundantApplies, stats.FiltersPushed, stats.ColumnsDropped)
	fmt.Print(opt.Print())

	plan, err := physical.Build(opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n---- physical plan (job stages) ----")
	fmt.Print(plan.String())
}

// selExample is §7's redundant-method-call selection.
func selExample() *core.Write {
	sel := &core.Selection{
		In:      core.NewScan("db", "emps", "Emp"),
		ArgType: "Emp",
		Predicate: func(emp *lambda.Arg) lambda.Term {
			return lambda.And(
				lambda.Gt(lambda.FromMethod(emp, "getSalary"), lambda.ConstF64(50000)),
				lambda.Lt(lambda.FromMethod(emp, "getSalary"), lambda.ConstF64(100000)),
			)
		},
	}
	return core.NewWrite("db", "out", sel)
}

// joinExample is §7's filter-pushdown join.
func joinExample() *core.Write {
	join := &core.Join{
		In:       []core.Computation{core.NewScan("db", "emps", "Emp"), core.NewScan("db", "sups", "Sup")},
		ArgTypes: []string{"Emp", "Sup"},
		Predicate: func(args []*lambda.Arg) lambda.Term {
			return lambda.And(
				lambda.Gt(lambda.FromMethod(args[0], "getSalary"), lambda.ConstF64(50000)),
				lambda.Eq(lambda.FromMethod(args[0], "getSupervisor"), lambda.FromMember(args[1], "name")),
			)
		},
		Projection: func(args []*lambda.Arg) lambda.Term { return lambda.FromSelf(args[0]) },
	}
	return core.NewWrite("db", "joined", join)
}

// join3Example is the §4 Dep/Emp/Sup three-way join behind Figure 1.
func join3Example() *core.Write {
	join := &core.Join{
		In: []core.Computation{
			core.NewScan("db", "deps", "Dep"),
			core.NewScan("db", "emps", "Emp"),
			core.NewScan("db", "sups", "Sup"),
		},
		ArgTypes: []string{"Dep", "Emp", "Sup"},
		Predicate: func(args []*lambda.Arg) lambda.Term {
			return lambda.And(
				lambda.Eq(lambda.FromMember(args[0], "deptName"), lambda.FromMethod(args[1], "getDeptName")),
				lambda.Eq(lambda.FromMember(args[0], "deptName"), lambda.FromMethod(args[2], "getDept")),
			)
		},
		Projection: func(args []*lambda.Arg) lambda.Term { return lambda.FromSelf(args[0]) },
	}
	return core.NewWrite("db", "threeway", join)
}

// fig3Example reproduces Figure 3's shape: three joins feeding an
// aggregation.
func fig3Example() *core.Write {
	scan := func(set string) *core.Scan { return core.NewScan("db", set, "Rec") }
	eq := func(args []*lambda.Arg, i, j int) lambda.Term {
		return lambda.Eq(lambda.FromMember(args[i], "key"), lambda.FromMember(args[j], "key"))
	}
	join := &core.Join{
		In:       []core.Computation{scan("in1"), scan("in2"), scan("in3"), scan("in4")},
		ArgTypes: []string{"Rec", "Rec", "Rec", "Rec"},
		Predicate: func(args []*lambda.Arg) lambda.Term {
			return lambda.And(eq(args, 0, 1), lambda.And(eq(args, 0, 2), eq(args, 0, 3)))
		},
		Projection: func(args []*lambda.Arg) lambda.Term { return lambda.FromSelf(args[0]) },
	}
	agg := &core.Aggregate{
		In:      join,
		ArgType: "Rec",
		Key:     func(arg *lambda.Arg) lambda.Term { return lambda.FromMember(arg, "key") },
		Val:     func(arg *lambda.Arg) lambda.Term { return lambda.ConstF64(1) },
		KeyKind: object.KInt64,
		ValKind: object.KFloat64,
		Combine: func(a *object.Allocator, cur object.Value, exists bool, next object.Value) (object.Value, error) {
			if !exists {
				return next, nil
			}
			return object.Float64Value(cur.F + next.F), nil
		},
		Finalize: func(a *object.Allocator, key, val object.Value) (object.Ref, error) {
			return a.MakeRaw(8)
		},
	}
	return core.NewWrite("db", "result", agg)
}
