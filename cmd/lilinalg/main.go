// lilinalg runs a lilLinAlg DSL script (paper §8.3.1) against an in-process
// PC cluster. Matrices referenced by load(...) are bound to random data of
// a configurable shape, so scripts like the paper's least-squares example
// run out of the box.
//
//	go run ./cmd/lilinalg -script "beta = (X '* X)^-1 %*% (X '* y)" -n 1000 -d 5
//	go run ./cmd/lilinalg -file myscript.lla
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"regexp"

	"repro/internal/matrix"
	"repro/linalg"
	"repro/pc"
)

func main() {
	script := flag.String("script", "beta = (X '* X)^-1 %*% (X '* y)", "DSL script text")
	file := flag.String("file", "", "read the script from a file instead")
	n := flag.Int("n", 500, "rows of generated matrices")
	d := flag.Int("d", 4, "columns of generated matrices")
	workers := flag.Int("workers", 4, "simulated worker nodes")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	src := *script
	if *file != "" {
		b, err := os.ReadFile(*file)
		if err != nil {
			log.Fatal(err)
		}
		src = string(b)
	}

	client, err := pc.Connect(pc.Config{Workers: *workers, PageSize: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := linalg.NewEngine(client, "la", 64)
	if err != nil {
		log.Fatal(err)
	}
	in := linalg.NewInterp(eng)

	// Bind every identifier the script references but does not define:
	// uppercase single letters and load() targets get random matrices
	// (y gets a column vector).
	rng := rand.New(rand.NewSource(*seed))
	for _, name := range referencedNames(src) {
		cols := *d
		if name == "y" || name == "Y" {
			cols = 1
		}
		m := matrix.New(*n, cols)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		if err := in.BindDense(name, m); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("bound %s: %dx%d random matrix\n", name, *n, cols)
	}

	out, err := in.Run(src)
	if err != nil {
		log.Fatal(err)
	}
	if out.IsMat() {
		dm, err := eng.Fetch(out.Mat)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("result: %dx%d matrix\n", dm.Rows, dm.Cols)
		maxR, maxC := dm.Rows, dm.Cols
		if maxR > 6 {
			maxR = 6
		}
		if maxC > 8 {
			maxC = 8
		}
		for i := 0; i < maxR; i++ {
			for j := 0; j < maxC; j++ {
				fmt.Printf("%10.4f", dm.At(i, j))
			}
			fmt.Println()
		}
		if maxR < dm.Rows || maxC < dm.Cols {
			fmt.Println("  ... (truncated)")
		}
	} else {
		fmt.Printf("result: scalar %g\n", out.Scalar)
	}
}

var identRe = regexp.MustCompile(`[A-Za-z_][A-Za-z0-9_.]*`)

// referencedNames extracts free variables: identifiers used before being
// assigned, excluding DSL function names.
func referencedNames(src string) []string {
	builtins := map[string]bool{
		"load": true, "t": true, "inv": true, "rowSum": true, "colSum": true,
		"minElement": true, "maxElement": true, "duplicateRow": true, "duplicateCol": true,
	}
	assigned := map[string]bool{}
	seen := map[string]bool{}
	var out []string
	for _, line := range regexp.MustCompile(`[;\n]`).Split(src, -1) {
		ids := identRe.FindAllString(line, -1)
		isAssign := regexp.MustCompile(`^\s*[A-Za-z_][A-Za-z0-9_.]*\s*=`).MatchString(line)
		for i, id := range ids {
			if builtins[id] {
				continue
			}
			if isAssign && i == 0 {
				continue // assignment target, marked below
			}
			if !assigned[id] && !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
		// Mark the assignment target after processing the line.
		if isAssign && len(ids) > 0 && !builtins[ids[0]] {
			assigned[ids[0]] = true
		}
	}
	return out
}
