// linkcheck verifies relative links in markdown files: every *.md under
// the given roots (skipping .git and vendor-like dirs) is scanned for
// [text](target) links, and each non-URL target must exist on disk
// relative to the file that links it — the documentation gate that keeps
// README/ARCHITECTURE/TUNING cross-references from rotting.
//
//	go run ./cmd/linkcheck .
//
// Exit status 1 lists each broken link as file: target. External links
// (http, https, mailto) and pure in-page anchors (#section) are skipped;
// an anchor suffix on a relative target is stripped before the existence
// check.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links, capturing the target. Images
// (![alt](target)) match too — their targets must exist just the same.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	broken := 0
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if name := d.Name(); name == ".git" || name == "node_modules" || name == "vendor" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(d.Name(), ".md") {
				return nil
			}
			// Retrieved reference corpora quote other repos' docs, whose
			// relative links point inside those repos — not checkable here.
			if n := d.Name(); n == "SNIPPETS.md" || n == "PAPERS.md" || n == "PAPER.md" {
				return nil
			}
			for _, target := range fileLinks(path) {
				if !checkLink(path, target) {
					fmt.Printf("%s: broken relative link %q\n", path, target)
					broken++
				}
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken relative link(s)\n", broken)
		os.Exit(1)
	}
}

// fileLinks extracts the checkable relative targets of one markdown file.
func fileLinks(path string) []string {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var out []string
	for _, m := range linkRe.FindAllStringSubmatch(string(b), -1) {
		target := m[1]
		switch {
		case strings.Contains(target, "://"), strings.HasPrefix(target, "mailto:"):
			continue // external
		case strings.HasPrefix(target, "#"):
			continue // in-page anchor
		}
		out = append(out, target)
	}
	return out
}

// checkLink reports whether a relative target (anchor stripped) exists
// relative to the linking file's directory.
func checkLink(path, target string) bool {
	if i := strings.IndexByte(target, '#'); i >= 0 {
		target = target[:i]
	}
	if target == "" {
		return true
	}
	_, err := os.Stat(filepath.Join(filepath.Dir(path), target))
	return err == nil
}
