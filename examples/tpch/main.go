// TPC-H object-oriented example (paper §8.4): denormalized Customer graphs
// queried with customers-per-supplier and top-k Jaccard, on PC and on the
// Spark-like baseline, printing the engines' relative cost counters.
//
//	go run ./examples/tpch
package main

import (
	"fmt"
	"log"

	"repro/internal/tpch"
	"repro/pc"
)

func main() {
	data := tpch.Generate(tpch.Params{Customers: 400, Seed: 1})

	client, err := pc.Connect(pc.Config{Workers: 4, PageSize: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	schema := tpch.RegisterSchema(client.Registry())
	if err := client.CreateDatabase("TPCH_db"); err != nil {
		log.Fatal(err)
	}
	if err := schema.LoadPC(client, "TPCH_db", "tpch_bench_set1", data); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d denormalized customers into PC (%d bytes shipped, zero serialization)\n",
		len(data), client.Cluster.Transport.Stats().BytesShipped)

	// Query 1: customers per supplier.
	if err := tpch.CustomersPerSupplierPC(client, schema, "TPCH_db", "tpch_bench_set1", "q1"); err != nil {
		log.Fatal(err)
	}
	counts, err := tpch.CountCustomersPerSupplierPC(client, schema, "TPCH_db", "q1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query 1: %d suppliers; e.g. first few customer counts:\n", len(counts))
	shown := 0
	for sup, n := range counts {
		fmt.Printf("  %s -> %d customers\n", sup, n)
		if shown++; shown == 3 {
			break
		}
	}

	// Query 2: top-k Jaccard against a query part list.
	query := []int64{1, 5, 9, 13, 17, 21, 25, 29, 33, 37}
	top, err := tpch.TopKJaccardPC(client, schema, "TPCH_db", "tpch_bench_set1", "q2", 5, query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query 2: top-5 customers by Jaccard similarity to the query part set:")
	for _, e := range top {
		fmt.Printf("  customer %4d  similarity %.4f\n", e.CustKey, e.Similarity)
	}

	// Relational-surface queries (queries 3–6): flatten the customer graphs
	// into purchase rows, then ORDER BY/top-k, DISTINCT, and semi/anti join.
	purchase := tpch.RegisterPurchase(client.Registry())
	if err := tpch.FlattenPurchasesPC(client, schema, purchase, "TPCH_db", "tpch_bench_set1", "purchases"); err != nil {
		log.Fatal(err)
	}
	topVol, err := tpch.TopCustomersByVolumePC(client, schema, "TPCH_db", "tpch_bench_set1", "q3", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query 3: top-5 customers by purchase volume (distributed ORDER BY): %v\n", topVol)
	parts, err := tpch.DistinctPartsSoldPC(client, purchase, "TPCH_db", "purchases", "q4")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query 4: %d distinct parts appear in at least one purchase\n", len(parts))
	promo := []int64{2, 3, 5, 7, 11, 13, 17, 19}
	if err := tpch.LoadPromoParts(client, schema, "TPCH_db", "promo", promo); err != nil {
		log.Fatal(err)
	}
	semi, err := tpch.PromoPurchasesPC(client, purchase, pc.JoinSemi, "TPCH_db", "purchases", "promo", "q5")
	if err != nil {
		log.Fatal(err)
	}
	anti, err := tpch.PromoPurchasesPC(client, purchase, pc.JoinAnti, "TPCH_db", "purchases", "promo", "q6")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query 5/6: %d purchases hit the %d promoted parts (semi join), %d missed (anti join)\n",
		len(semi), len(promo), len(anti))

	// The same queries on the baseline, showing the serialization bill PC
	// never pays.
	bd, err := tpch.LoadBaseline(4, tpch.ModeHotStorage, data)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := bd.CustomersPerSupplierBaseline(); err != nil {
		log.Fatal(err)
	}
	if _, err := bd.TopKJaccardBaseline(5, query); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline engine paid %d serializations / %d deserializations (%d + %d bytes) for the same work\n",
		bd.Ctx.Stats.SerializeOps, bd.Ctx.Stats.DeserializeOps,
		bd.Ctx.Stats.SerializedBytes, bd.Ctx.Stats.DeserializedBytes)
}
