// lilLinAlg example: distributed least-squares regression through the
// Matlab-like DSL (paper §8.3.1):
//
//	beta = (X '* X)^-1 %*% (X '* y)
//
//	go run ./examples/linalg
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/matrix"
	"repro/linalg"
	"repro/pc"
)

func main() {
	client, err := pc.Connect(pc.Config{Workers: 4, PageSize: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := linalg.NewEngine(client, "la", 64)
	if err != nil {
		log.Fatal(err)
	}

	// Synthesize y = X·beta with known coefficients.
	const n, d = 2000, 6
	rng := rand.New(rand.NewSource(42))
	X := matrix.New(n, d)
	for i := range X.Data {
		X.Data[i] = rng.NormFloat64()
	}
	trueBeta := []float64{3, -1, 0.5, 2, -2, 1}
	y := matrix.New(n, 1)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < d; j++ {
			s += X.At(i, j) * trueBeta[j]
		}
		y.Set(i, 0, s+0.01*rng.NormFloat64())
	}

	in := linalg.NewInterp(eng)
	if err := in.BindDense("myMatrix.data", X); err != nil {
		log.Fatal(err)
	}
	if err := in.BindDense("myResponses.data", y); err != nil {
		log.Fatal(err)
	}

	script := `
X = load(myMatrix.data)
y = load(myResponses.data)
beta = (X '* X)^-1 %*% (X '* y)
`
	fmt.Print("running lilLinAlg script:", script)
	out, err := in.Run(script)
	if err != nil {
		log.Fatal(err)
	}
	beta, err := eng.Fetch(out.Mat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovered coefficients (true values in parentheses):")
	for j := 0; j < d; j++ {
		fmt.Printf("  beta[%d] = %+.4f  (%+.1f)\n", j, beta.At(j, 0), trueBeta[j])
	}
}
