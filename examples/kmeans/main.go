// k-means example (paper Appendix A): an AggregateComp keyed by the closest
// centroid, iterated to convergence on a simulated PC cluster.
//
//	go run ./examples/kmeans
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/ml"
	"repro/pc"
)

func main() {
	const (
		n, d, k = 3000, 4, 5
		iters   = 10
	)
	rng := rand.New(rand.NewSource(7))
	points, labels := ml.GeneratePoints(rng, n, d, k)

	client, err := pc.Connect(pc.Config{Workers: 4, PageSize: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	km, err := ml.NewKMeansPC(client, "kmdb", k, d)
	if err != nil {
		log.Fatal(err)
	}
	model, err := km.Init(points)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initialized k-means: %d points, %d dims, k=%d\n", n, d, k)

	for i := 0; i < iters; i++ {
		model, err = km.Iterate(model)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after %d iterations, centroids:\n", iters)
	for c, m := range model {
		fmt.Printf("  c%d = [", c)
		for j, v := range m {
			if j > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%+.2f", v)
		}
		fmt.Println("]")
	}

	// How well did clustering recover the generating labels?
	agree := quality(model, points, labels)
	fmt.Printf("pair-agreement with true clusters: %.3f\n", agree)
}

func quality(model [][]float64, points [][]float64, labels []int) float64 {
	assign := make([]int, len(points))
	for i, x := range points {
		best, bestD := 0, -1.0
		for c, m := range model {
			dd := 0.0
			for j := range m {
				dd += (x[j] - m[j]) * (x[j] - m[j])
			}
			if bestD < 0 || dd < bestD {
				best, bestD = c, dd
			}
		}
		assign[i] = best
	}
	agreeN, total := 0, 0
	for i := 0; i < len(points); i += 11 {
		for j := i + 1; j < len(points); j += 17 {
			total++
			if (labels[i] == labels[j]) == (assign[i] == assign[j]) {
				agreeN++
			}
		}
	}
	return float64(agreeN) / float64(total)
}
