// Quickstart: the paper's §3 walkthrough on the public API.
//
// Build DataPoint objects into allocation-block pages, send them into the
// cluster with zero serialization, run a declarative selection, and read
// the results back.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/object"
	"repro/pc"
)

func main() {
	client, err := pc.Connect(pc.Config{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}

	// class DataPoint : public Object { Handle<Vector<double>> data; };
	dp := pc.NewStruct("DataPoint").
		AddField("data", pc.KHandle).
		MustBuild(client.Registry())
	dp.Methods["norm2"] = pc.Method{Name: "norm2", Ret: pc.KFloat64,
		Fn: func(r pc.Ref) pc.Value {
			v := object.AsVector(object.GetHandleField(r, dp.Field("data")))
			s := 0.0
			for i := 0; i < v.Len(); i++ {
				s += v.F64At(i) * v.F64At(i)
			}
			return pc.Float64Value(s)
		}}

	if err := client.CreateDatabase("Mydb"); err != nil {
		log.Fatal(err)
	}
	if err := client.CreateSet("Mydb", "Myset", "DataPoint"); err != nil {
		log.Fatal(err)
	}

	// makeObjectAllocatorBlock + makeObject + push_back, then sendData.
	pages, err := client.BuildPages(1000, func(a *pc.Allocator, i int) (pc.Ref, error) {
		storeMe, err := a.MakeObject(dp)
		if err != nil {
			return pc.Ref{}, err
		}
		data, err := pc.MakeVector(a, pc.KFloat64, 0)
		if err != nil {
			return pc.Ref{}, err
		}
		for j := 0; j < 100; j++ {
			if err := data.PushBackF64(a, 0.01*float64(i)); err != nil {
				return pc.Ref{}, err
			}
		}
		return storeMe, object.SetHandleField(a, storeMe, dp.Field("data"), data.Ref)
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := client.SendData("Mydb", "Myset", pages); err != nil {
		log.Fatal(err)
	}
	n, _ := client.CountSet("Mydb", "Myset")
	fmt.Printf("loaded %d data points across %d workers (%d pages shipped, %d bytes, zero serialization)\n",
		n, len(client.Cluster.Workers), client.Cluster.Transport.Stats().PagesShipped, client.Cluster.Transport.Stats().BytesShipped)

	// Declarative selection: keep points whose squared norm exceeds 25.
	sel := &pc.Selection{
		In:      pc.NewScan("Mydb", "Myset", "DataPoint"),
		ArgType: "DataPoint",
		Predicate: func(arg *pc.Arg) pc.Term {
			return pc.Gt(pc.FromMethod(arg, "norm2"), pc.ConstF64(25))
		},
	}
	if err := client.CreateSet("Mydb", "big", "DataPoint"); err != nil {
		log.Fatal(err)
	}
	stats, err := client.ExecuteComputations(pc.NewWrite("Mydb", "big", sel))
	if err != nil {
		log.Fatal(err)
	}
	kept, _ := client.CountSet("Mydb", "big")
	fmt.Printf("selection kept %d points (executed as %d job stages)\n", kept, stats.Stages)
}
