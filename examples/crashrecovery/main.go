// Crash recovery example (paper §2): worker nodes run user code in a
// separate backend process; when a buggy native lambda crashes a backend,
// the front end re-forks it and the scheduler retries the stage. Both
// sides of a streaming shuffle recover: a crashed producer re-runs with
// sender-side duplicate dropping, and a crashed consumer restores its
// last merge checkpoint and replays only the stream's suffix. Act three
// squeezes the same recovery through a one-page memory budget
// (Config.MemoryBudget): the exchange spills its lanes, replay retention,
// and checkpoint snapshots to disk, and the crash still recovers with the
// exact same sums.
//
//	go run ./examples/crashrecovery
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	"repro/internal/object"
	"repro/pc"
)

func main() {
	client, err := pc.Connect(pc.Config{Workers: 3})
	if err != nil {
		log.Fatal(err)
	}
	rec := pc.NewStruct("Rec").
		AddField("x", pc.KInt64).
		MustBuild(client.Registry())
	if err := client.CreateDatabase("db"); err != nil {
		log.Fatal(err)
	}
	if err := client.CreateSet("db", "in", "Rec"); err != nil {
		log.Fatal(err)
	}
	pages, err := client.BuildPages(500, func(a *pc.Allocator, i int) (pc.Ref, error) {
		r, err := a.MakeObject(rec)
		if err != nil {
			return pc.Ref{}, err
		}
		object.SetI64(r, rec.Field("x"), int64(i))
		return r, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := client.SendData("db", "in", pages); err != nil {
		log.Fatal(err)
	}

	// The projection panics exactly once — simulating a rare user bug
	// that takes down one worker backend mid-job.
	var crashes int32
	sel := &pc.Selection{
		In:      pc.NewScan("db", "in", "Rec"),
		ArgType: "Rec",
		Projection: func(arg *pc.Arg) pc.Term {
			return pc.FromNative("crashOnce", pc.KHandle,
				func(ctx *pc.NativeCtx, args []pc.Value) (pc.Value, error) {
					if atomic.CompareAndSwapInt32(&crashes, 0, 1) {
						panic("segfault in user code (simulated)")
					}
					return args[0], nil
				}, pc.FromSelf(arg))
		},
	}
	if err := client.CreateSet("db", "out", "Rec"); err != nil {
		log.Fatal(err)
	}
	stats, err := client.ExecuteComputations(pc.NewWrite("db", "out", sel))
	if err != nil {
		log.Fatalf("job failed despite re-fork: %v", err)
	}
	reforks := 0
	for _, w := range client.Cluster.Workers {
		reforks += w.Front.ReForks
	}
	n, _ := client.CountSet("db", "out")
	fmt.Printf("user code crashed a backend once; front end re-forked %d backend(s), "+
		"scheduler retried %d stage share(s), and the job still produced all %d rows\n",
		reforks, stats.Retries, n)

	// Act two: crash the CONSUMING side. The Finalize lambda — which runs
	// inside the aggregation's streaming merge consumer — panics once; the
	// scheduler restores the consumer's last checkpoint, rewinds the
	// exchange, and replays, so the sums still come out exact.
	var finalizeCrashes int32
	agg := &pc.Aggregate{
		In:      pc.NewScan("db", "in", "Rec"),
		ArgType: "Rec",
		Key: func(arg *pc.Arg) pc.Term {
			return pc.FromNative("mod5", pc.KInt64,
				func(ctx *pc.NativeCtx, args []pc.Value) (pc.Value, error) {
					return object.Int64Value(object.GetI64(args[0].H, rec.Field("x")) % 5), nil
				}, pc.FromSelf(arg))
		},
		Val: func(arg *pc.Arg) pc.Term {
			return pc.FromNative("val", pc.KInt64,
				func(ctx *pc.NativeCtx, args []pc.Value) (pc.Value, error) {
					return object.Int64Value(object.GetI64(args[0].H, rec.Field("x"))), nil
				}, pc.FromSelf(arg))
		},
		KeyKind: pc.KInt64,
		ValKind: pc.KInt64,
		Combine: func(a *pc.Allocator, cur pc.Value, exists bool, next pc.Value) (pc.Value, error) {
			if !exists {
				return next, nil
			}
			return object.Int64Value(cur.I + next.I), nil
		},
		Finalize: func(a *pc.Allocator, key, val pc.Value) (pc.Ref, error) {
			if atomic.CompareAndSwapInt32(&finalizeCrashes, 0, 1) {
				panic("segfault in user finalize code (simulated)")
			}
			out, err := a.MakeObject(rec)
			if err != nil {
				return pc.Ref{}, err
			}
			object.SetI64(out, rec.Field("x"), val.I)
			return out, nil
		},
	}
	if err := client.CreateSet("db", "sums", "Rec"); err != nil {
		log.Fatal(err)
	}
	aggStats, err := client.ExecuteComputations(pc.NewWrite("db", "sums", agg))
	if err != nil {
		log.Fatalf("aggregation failed despite consumer recovery: %v", err)
	}
	groups, _ := client.CountSet("db", "sums")
	ckpts := 0
	for _, s := range aggStats.Ships {
		ckpts += s.Checkpoints
	}
	fmt.Printf("user code then crashed a consuming merge; the scheduler restored the last "+
		"of %d checkpoint(s), replayed the stream, recovered %d consumer(s), and all %d "+
		"group sums are intact\n", ckpts, aggStats.ConsumerRecoveries, groups)

	// Act three: the same consumer crash under memory pressure. A
	// one-page MemoryBudget forces the exchange to spill lane pages,
	// replay retention, and checkpoint snapshots to disk; recovery
	// restores the spilled checkpoint, reloads the evicted stream suffix,
	// and the sums still come out exact.
	tiny, err := pc.Connect(pc.Config{Workers: 3, Threads: 2, PageSize: 1 << 12,
		MemoryBudget: 1 << 12, CheckpointInterval: 2})
	if err != nil {
		log.Fatal(err)
	}
	tinyRec := pc.NewStruct("Rec").
		AddField("x", pc.KInt64).
		MustBuild(tiny.Registry())
	if err := tiny.CreateDatabase("db"); err != nil {
		log.Fatal(err)
	}
	if err := tiny.CreateSet("db", "in", "Rec"); err != nil {
		log.Fatal(err)
	}
	tinyPages, err := tiny.BuildPages(4000, func(a *pc.Allocator, i int) (pc.Ref, error) {
		r, err := a.MakeObject(tinyRec)
		if err != nil {
			return pc.Ref{}, err
		}
		object.SetI64(r, tinyRec.Field("x"), int64(i))
		return r, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := tiny.SendData("db", "in", tinyPages); err != nil {
		log.Fatal(err)
	}
	var spillCrashes int32
	spillAgg := &pc.Aggregate{
		In:      pc.NewScan("db", "in", "Rec"),
		ArgType: "Rec",
		Key: func(arg *pc.Arg) pc.Term {
			return pc.FromNative("mod499", pc.KInt64,
				func(ctx *pc.NativeCtx, args []pc.Value) (pc.Value, error) {
					return object.Int64Value(object.GetI64(args[0].H, tinyRec.Field("x")) % 499), nil
				}, pc.FromSelf(arg))
		},
		Val: func(arg *pc.Arg) pc.Term {
			return pc.FromNative("val", pc.KInt64,
				func(ctx *pc.NativeCtx, args []pc.Value) (pc.Value, error) {
					return object.Int64Value(object.GetI64(args[0].H, tinyRec.Field("x"))), nil
				}, pc.FromSelf(arg))
		},
		KeyKind: pc.KInt64,
		ValKind: pc.KInt64,
		Combine: func(a *pc.Allocator, cur pc.Value, exists bool, next pc.Value) (pc.Value, error) {
			if !exists {
				return next, nil
			}
			return object.Int64Value(cur.I + next.I), nil
		},
		Finalize: func(a *pc.Allocator, key, val pc.Value) (pc.Ref, error) {
			if atomic.CompareAndSwapInt32(&spillCrashes, 0, 1) {
				panic("segfault in user finalize code under memory pressure (simulated)")
			}
			out, err := a.MakeObject(tinyRec)
			if err != nil {
				return pc.Ref{}, err
			}
			object.SetI64(out, tinyRec.Field("x"), val.I)
			return out, nil
		},
	}
	if err := tiny.CreateSet("db", "sums", "Rec"); err != nil {
		log.Fatal(err)
	}
	spillStats, err := tiny.ExecuteComputations(pc.NewWrite("db", "sums", spillAgg))
	if err != nil {
		log.Fatalf("spilling aggregation failed despite consumer recovery: %v", err)
	}
	tinyGroups, _ := tiny.CountSet("db", "sums")
	var spilled, maxBuffered int64
	for _, s := range spillStats.Ships {
		spilled += s.SpilledPages
		if s.MaxBufferedBytes > maxBuffered {
			maxBuffered = s.MaxBufferedBytes
		}
	}
	fmt.Printf("under a one-page (4 KiB) memory budget the exchange spilled %d page(s) to disk, "+
		"kept at most %d bytes resident, crashed and recovered %d consumer(s) — and all %d "+
		"group sums are still intact\n", spilled, maxBuffered, spillStats.ConsumerRecoveries, tinyGroups)
}
