// Crash recovery example (paper §2): worker nodes run user code in a
// separate backend process; when a buggy native lambda crashes a backend,
// the front end re-forks it and the scheduler retries the stage.
//
//	go run ./examples/crashrecovery
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	"repro/internal/object"
	"repro/pc"
)

func main() {
	client, err := pc.Connect(pc.Config{Workers: 3})
	if err != nil {
		log.Fatal(err)
	}
	rec := pc.NewStruct("Rec").
		AddField("x", pc.KInt64).
		MustBuild(client.Registry())
	if err := client.CreateDatabase("db"); err != nil {
		log.Fatal(err)
	}
	if err := client.CreateSet("db", "in", "Rec"); err != nil {
		log.Fatal(err)
	}
	pages, err := client.BuildPages(500, func(a *pc.Allocator, i int) (pc.Ref, error) {
		r, err := a.MakeObject(rec)
		if err != nil {
			return pc.Ref{}, err
		}
		object.SetI64(r, rec.Field("x"), int64(i))
		return r, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := client.SendData("db", "in", pages); err != nil {
		log.Fatal(err)
	}

	// The projection panics exactly once — simulating a rare user bug
	// that takes down one worker backend mid-job.
	var crashes int32
	sel := &pc.Selection{
		In:      pc.NewScan("db", "in", "Rec"),
		ArgType: "Rec",
		Projection: func(arg *pc.Arg) pc.Term {
			return pc.FromNative("crashOnce", pc.KHandle,
				func(ctx *pc.NativeCtx, args []pc.Value) (pc.Value, error) {
					if atomic.CompareAndSwapInt32(&crashes, 0, 1) {
						panic("segfault in user code (simulated)")
					}
					return args[0], nil
				}, pc.FromSelf(arg))
		},
	}
	if err := client.CreateSet("db", "out", "Rec"); err != nil {
		log.Fatal(err)
	}
	stats, err := client.ExecuteComputations(pc.NewWrite("db", "out", sel))
	if err != nil {
		log.Fatalf("job failed despite re-fork: %v", err)
	}
	reforks := 0
	for _, w := range client.Cluster.Workers {
		reforks += w.Front.ReForks
	}
	n, _ := client.CountSet("db", "out")
	fmt.Printf("user code crashed a backend once; front end re-forked %d backend(s), "+
		"scheduler retried %d stage share(s), and the job still produced all %d rows\n",
		reforks, stats.Retries, n)
}
