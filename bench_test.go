// Package repro's root benchmark suite: one testing.B benchmark per table
// and figure of the paper's evaluation (§8), backed by the harness in
// internal/bench. Run with:
//
//	go test -bench=. -benchmem
//
// cmd/pcbench prints the same experiments as formatted tables next to the
// paper's reported numbers.
package repro

import (
	"testing"

	"repro/internal/bench"
)

func runTable(b *testing.B, fn func() (*bench.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := fn()
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty result table")
		}
	}
}

// BenchmarkTable2 regenerates the lilLinAlg linear-algebra comparison
// (Gram matrix, least squares, nearest neighbour; PC vs baseline).
func BenchmarkTable2LinearAlgebra(b *testing.B) {
	runTable(b, func() (*bench.Table, error) {
		return bench.RunTable2(bench.Table2Config{N: 1200, Dims: []int{10, 25}, Seed: 1})
	})
}

// BenchmarkTable3 regenerates the TPC-H object-oriented workload comparison.
func BenchmarkTable3TPCH(b *testing.B) {
	runTable(b, func() (*bench.Table, error) {
		return bench.RunTable3(bench.Table3Config{CustomerCounts: []int{300}, K: 8})
	})
}

// BenchmarkTable4 regenerates the LDA tuning-ladder comparison.
func BenchmarkTable4LDA(b *testing.B) {
	runTable(b, func() (*bench.Table, error) {
		return bench.RunTable4(bench.Table4Config{Docs: 120, Vocab: 120, Topics: 5, WordsPerDoc: 40, Iters: 1})
	})
}

// BenchmarkTable5 regenerates the GMM comparison.
func BenchmarkTable5GMM(b *testing.B) {
	runTable(b, func() (*bench.Table, error) {
		return bench.RunTable5(bench.Table5Config{Shapes: [][2]int{{800, 8}}, K: 4, Iters: 1})
	})
}

// BenchmarkTable6 regenerates the k-means comparison.
func BenchmarkTable6KMeans(b *testing.B) {
	runTable(b, func() (*bench.Table, error) {
		return bench.RunTable6(bench.Table6Config{Shapes: [][2]int{{4000, 10}}, K: 6, Iters: 1})
	})
}

// BenchmarkTable7 regenerates the SLOC comparison.
func BenchmarkTable7SLOC(b *testing.B) {
	runTable(b, func() (*bench.Table, error) { return bench.RunTable7(".") })
}

// BenchmarkTable8 regenerates the matmul kernel comparison.
func BenchmarkTable8Matmul(b *testing.B) {
	runTable(b, func() (*bench.Table, error) {
		return bench.RunTable8(bench.Table8Config{Sizes: []int{96, 160}})
	})
}

// BenchmarkObjectModelVsGob is the primitive ablation: page ship vs gob
// round trip (DESIGN.md §5).
func BenchmarkObjectModelVsGob(b *testing.B) {
	runTable(b, func() (*bench.Table, error) { return bench.RunObjectModelVsGob(20000) })
}

// BenchmarkAllocatorPolicies is the Appendix B ablation.
func BenchmarkAllocatorPolicies(b *testing.B) {
	runTable(b, func() (*bench.Table, error) { return bench.RunAllocatorPolicies(50000) })
}

// BenchmarkBroadcastVsPartition is the join-strategy ablation (§8.3 /
// Appendix D.3).
func BenchmarkBroadcastVsPartition(b *testing.B) {
	runTable(b, func() (*bench.Table, error) { return bench.RunBroadcastVsPartition(3000, 300) })
}

// BenchmarkOptimizerPushdown is the declarative-in-the-large ablation (§7).
func BenchmarkOptimizerPushdown(b *testing.B) {
	runTable(b, func() (*bench.Table, error) { return bench.RunOptimizerAblation(3000) })
}

// BenchmarkCoPartitionedJoin is the §8.3.3 extension ablation:
// pre-partitioned sets joined without any shuffle.
func BenchmarkCoPartitionedJoin(b *testing.B) {
	runTable(b, func() (*bench.Table, error) { return bench.RunCoPartitionedJoin(3000, 600) })
}

// BenchmarkIntraWorkerScaling is the intra-worker parallelism ablation:
// per-iteration k-means latency vs Config.Threads, with a bit-for-bit
// model-identity check across thread counts.
func BenchmarkIntraWorkerScaling(b *testing.B) {
	runTable(b, func() (*bench.Table, error) {
		return bench.RunIntraWorkerScaling(bench.ScalingConfig{
			N: 6000, D: 10, K: 6, Iters: 1, Workers: 2, Threads: []int{1, 4},
		})
	})
}

// BenchmarkAggScaling is the aggregation-consume parallelism ablation:
// group-by integer-sum latency vs Config.Threads, with a bit-for-bit
// group-set identity check across thread counts.
func BenchmarkAggScaling(b *testing.B) {
	runTable(b, func() (*bench.Table, error) {
		return bench.RunAggScaling(bench.AggScalingConfig{
			N: 20000, Groups: 128, Workers: 2, Threads: []int{1, 4},
		})
	})
}

// BenchmarkJoinScaling is the hash-partition-join parallelism ablation:
// repartition/build/probe latency vs Config.Threads, with a bit-for-bit
// match-set identity check across thread counts.
func BenchmarkJoinScaling(b *testing.B) {
	runTable(b, func() (*bench.Table, error) {
		return bench.RunJoinScaling(bench.JoinScalingConfig{
			Left: 6000, Right: 400, Keys: 199, Workers: 2, Threads: []int{1, 4},
		})
	})
}

// BenchmarkShuffleOverlap is the streaming-shuffle ablation: barrier vs
// streaming exchange on aggregation- and join-heavy workloads, with the
// bytes-in-flight high-water mark and an enforced bit-for-bit identity
// check (streaming result == barrier result) that gates merges via the CI
// bench smoke.
func BenchmarkShuffleOverlap(b *testing.B) {
	runTable(b, func() (*bench.Table, error) {
		return bench.RunShuffleOverlap(bench.ShuffleOverlapConfig{
			N: 20000, Groups: 128, Left: 6000, Right: 400, Keys: 199,
			Workers: 2, Threads: []int{1, 4},
		})
	})
}

// BenchmarkMorselSkewLadder is the morsel-scheduling ablation: a
// compute-skewed stage under static splits vs the morsel dispatcher, with
// bit-for-bit identity against the static baseline enforced as an error so
// the CI bench smoke gates merges on it.
func BenchmarkMorselSkewLadder(b *testing.B) {
	runTable(b, func() (*bench.Table, error) {
		return bench.RunMorselSkewLadder(bench.MorselLadderConfig{
			HeavyPages: 2, LightPages: 6, RowsPerPage: 256,
			HeavyCost: 4000, LightCost: 50,
			Threads: 4, MorselPages: []int{1, 2},
		})
	})
}

// BenchmarkHashTableLadder is the hash-backend ablation: agg-heavy,
// join-heavy, and duplicate-skewed rungs under the swiss-table backend vs
// the map baseline, plus a RefTable-vs-map micro rung, with bit-for-bit
// cross-backend identity enforced as an error so the CI bench smoke gates
// merges on it.
func BenchmarkHashTableLadder(b *testing.B) {
	runTable(b, func() (*bench.Table, error) {
		return bench.RunHashTableLadder(bench.HashLadderConfig{
			Workers: 2, Threads: 4,
			AggN: 20000, AggGroups: 128,
			JoinLeft: 6000, JoinRight: 400, JoinKeys: 199,
			SkewLeft: 4000, SkewRight: 200, SkewKeys: 50,
			MicroN: 50000, Reps: 1,
		})
	})
}

// BenchmarkSortLadder is the relational-surface ablation: the distributed
// ORDER BY merge network across thread counts, with bit-for-bit identity
// against the 1-thread baseline enforced as an error so the CI bench smoke
// gates merges on it.
func BenchmarkSortLadder(b *testing.B) {
	runTable(b, func() (*bench.Table, error) {
		return bench.RunSortLadder(bench.SortScalingConfig{
			N: 12000, Groups: 97, SpillRows: 1024,
			Workers: 2, Threads: []int{1, 2, 4},
		})
	})
}

// BenchmarkSpillLadder is the memory-governor ablation: the same workloads
// under a shrinking Config.MemoryBudget, down to a single page, with the
// bit-for-bit identity and resident-bytes-within-budget checks enforced as
// errors so the CI bench smoke gates merges on them.
func BenchmarkSpillLadder(b *testing.B) {
	runTable(b, func() (*bench.Table, error) {
		return bench.RunSpillLadder(bench.SpillLadderConfig{
			N: 20000, Groups: 2048, Left: 6000, Right: 400, Keys: 199,
			Workers: 2, Threads: 2, PageSize: 1 << 14, BudgetPages: []int{0, 4, 1},
		})
	})
}
